// Static analysis tests: the §III-A correctness checks. The catalog is
// built through the engine (CheckOnly mode), then individual statements
// are analysed and the reported errors inspected.
package sema_test

import (
	"strings"
	"testing"

	"graql/internal/exec"
	"graql/internal/parser"
	"graql/internal/sema"
)

// fixture builds a catalog with a small typed schema (no data needed for
// static analysis).
func fixture(t *testing.T) *exec.Engine {
	t.Helper()
	e := exec.New(exec.Options{CheckOnly: true, ReverseIndexes: true})
	_, err := e.ExecScript(`
create table Products(
  id varchar(10),
  label varchar(20),
  producer varchar(10),
  price float,
  added date
)
create table Producers(id varchar(10), country varchar(10))
create table Reviews(id varchar(10), reviewFor varchar(10), stars integer)

create vertex ProductVtx(id) from table Products
create vertex ProducerVtx(id) from table Producers
create vertex ReviewVtx(id) from table Reviews

create edge producer with
vertices (ProductVtx, ProducerVtx)
where ProductVtx.producer = ProducerVtx.id

create edge reviewFor with
vertices (ReviewVtx, ProductVtx)
where ReviewVtx.reviewFor = ProductVtx.id
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// analyze parses one statement and runs static analysis against the
// fixture catalog.
func analyze(t *testing.T, e *exec.Engine, src string) (sema.Stmt, error) {
	t.Helper()
	script, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	if len(script.Stmts) != 1 {
		t.Fatalf("want one statement, got %d", len(script.Stmts))
	}
	an := &sema.Analyzer{Cat: e.Cat}
	return an.Analyze(script.Stmts[0])
}

func wantErr(t *testing.T, e *exec.Engine, src, fragment string) {
	t.Helper()
	_, err := analyze(t, e, src)
	if err == nil {
		t.Fatalf("expected error containing %q for:\n%s", fragment, src)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Errorf("error %q does not mention %q", err, fragment)
	}
}

func wantOK(t *testing.T, e *exec.Engine, src string) {
	t.Helper()
	if _, err := analyze(t, e, src); err != nil {
		t.Errorf("unexpected error: %v\n%s", err, src)
	}
}

// TestTypeErrors reproduces the paper's flagship static check: "is the
// query comparing an attribute with a constant (or other attribute) of
// the wrong type? (e.g. comparing a date to a floating-point number)".
func TestTypeErrors(t *testing.T) {
	e := fixture(t)
	wantErr(t, e, `select id from table Products where added > 3.5`, "date")
	wantErr(t, e, `select id from table Products where price = 'cheap'`, "compare")
	wantErr(t, e, `select id from table Products where id + 1 > 2`, "+")
	wantErr(t, e, `select * from graph ProductVtx (added > 3.5) into subgraph g`, "date")
	// Strings against dates coerce (natural literal spelling).
	wantOK(t, e, `select id from table Products where added >= '2008-01-01'`)
	// Parameters are statically wildcards.
	wantOK(t, e, `select id from table Products where added >= %D%`)
}

// TestEntityKindErrors covers "is the query using an entity of correct
// type for certain operations? (e.g. a table name should be used when a
// table is required, rather than a vertex type name)".
func TestEntityKindErrors(t *testing.T) {
	e := fixture(t)
	wantErr(t, e, `select id from table ProductVtx`, "vertex type")
	wantErr(t, e, `select id from table producer`, "edge type")
	wantErr(t, e, `create vertex V2(id) from table ProductVtx`, "vertex type")
	wantErr(t, e, `select * from graph Products ( ) into subgraph g`, "table")
	wantErr(t, e, `select * from graph producer ( ) into subgraph g`, "edge type")
	wantErr(t, e, `select * from graph ProductVtx ( ) --ProducerVtx--> ProducerVtx ( ) into subgraph g`, "vertex type")
}

func TestUnknownNames(t *testing.T) {
	e := fixture(t)
	wantErr(t, e, `select id from table Missing`, "unknown table")
	wantErr(t, e, `select missing from table Products`, "no column")
	wantErr(t, e, `select * from graph Nope ( ) into subgraph g`, "unknown vertex type")
	wantErr(t, e, `select * from graph ProductVtx ( ) --nope--> ProducerVtx ( ) into subgraph g`, "unknown edge type")
	wantErr(t, e, `select * from graph ProductVtx (nope = 1) into subgraph g`, "no attribute")
	wantErr(t, e, `select * from graph lost.ProductVtx ( ) into subgraph g`, "unknown subgraph")
}

// TestPathWellFormedness covers "is a path query correctly formulated?".
func TestPathWellFormedness(t *testing.T) {
	e := fixture(t)
	// Edge endpoint types must match the declaration.
	wantErr(t, e, `select * from graph ProducerVtx ( ) --producer--> ProductVtx ( ) into subgraph g`,
		"requires a step of vertex type")
	// Direction matters: producer goes Product→Producer.
	wantOK(t, e, `select * from graph ProducerVtx ( ) <--producer-- ProductVtx ( ) into subgraph g`)
	// And-composition must share a label.
	wantErr(t, e, `select * from graph
ProductVtx ( ) --producer--> ProducerVtx ( )
and (ReviewVtx ( ) --reviewFor--> ProductVtx ( ))
into subgraph g`, "share a label")
	wantOK(t, e, `select * from graph
foreach p: ProductVtx ( ) --producer--> ProducerVtx ( )
and (ReviewVtx ( ) --reviewFor--> p)
into subgraph g`)
}

func TestVariantStepRestrictions(t *testing.T) {
	e := fixture(t)
	// "Conditional expressions for variant query steps are not allowed".
	wantErr(t, e, `select * from graph ProductVtx ( ) --[ ]--> [ ] (id = 'x') into subgraph g`,
		"variant")
	// Attributes of variant steps cannot be referenced or projected.
	wantErr(t, e, `select x.id from graph ProductVtx ( ) <--[ ]-- def x: [ ]`, "variant")
	// Variant steps cannot appear in star table output.
	wantErr(t, e, `select * from graph ProductVtx ( ) <--[ ]-- [ ] into table T`, "variant")
	// ... but are fine in subgraphs (Fig. 9).
	wantOK(t, e, `select * from graph ProductVtx (id = 'p1') <--[ ]-- [ ] into subgraph g`)
}

func TestLabelRules(t *testing.T) {
	e := fixture(t)
	wantErr(t, e, `select * from graph
def x: ProductVtx ( ) --producer--> def x: ProducerVtx ( ) into subgraph g`, "already defined")
	// Unknown label reference reads as unknown vertex type.
	wantErr(t, e, `select * from graph ProductVtx ( ) --producer--> y into subgraph g`, "unknown")
	// Edge labels cannot stand as vertex steps.
	wantErr(t, e, `select * from graph
ProductVtx ( ) --def f: producer--> ProducerVtx ( ) and (f --producer--> ProducerVtx ( ))
into subgraph g`, "edge step")
}

// TestOutputAmbiguity covers "the output steps must be unambiguous ...
// if they are not then labels can be used to disambiguate them".
func TestOutputAmbiguity(t *testing.T) {
	e := fixture(t)
	wantErr(t, e, `select ProductVtx from graph
ProductVtx ( ) --producer--> ProducerVtx ( ) <--producer-- ProductVtx ( )`,
		"ambiguous")
	wantOK(t, e, `select y from graph
ProductVtx ( ) --producer--> ProducerVtx ( ) <--producer-- def y: ProductVtx ( )`)
}

func TestGraphSelectRestrictions(t *testing.T) {
	e := fixture(t)
	wantErr(t, e, `select count(*) from graph ProductVtx ( ) --producer--> ProducerVtx ( )`,
		"table select")
	wantErr(t, e, `select id from graph ProductVtx ( ) --producer--> ProducerVtx ( ) group by id`,
		"table select")
	wantErr(t, e, `select id from graph ProductVtx ( ) --producer--> ProducerVtx ( ) where id = 'x'`,
		"conditions on query steps")
	wantErr(t, e, `select ProductVtx.id from graph ProductVtx ( ) --producer--> ProducerVtx ( ) into subgraph g`,
		"whole steps")
}

func TestTableSelectRules(t *testing.T) {
	e := fixture(t)
	wantErr(t, e, `select label, count(*) from table Products group by id`, "group by")
	wantErr(t, e, `select sum(label) from table Products`, "non-numeric")
	wantErr(t, e, `select id from table Products order by label`, "output column")
	wantErr(t, e, `select id, id from table Products`, "duplicate")
	wantOK(t, e, `select id, id as id2 from table Products`)
	wantOK(t, e, `select id, count(*) as n from table Products group by id order by n desc`)
}

func TestDuplicateDDLNames(t *testing.T) {
	e := fixture(t)
	wantErr(t, e, `create table Products(id integer)`, "already exists")
	wantErr(t, e, `create vertex ProductVtx(id) from table Products`, "already exists")
	wantErr(t, e, `create table ProductVtx(id integer)`, "already in use")
	wantErr(t, e, `create edge producer with vertices (ProductVtx, ProducerVtx) where ProductVtx.producer = ProducerVtx.id`, "already exists")
}

func TestEdgeDeclarationAnalysis(t *testing.T) {
	e := fixture(t)
	// Self-edges need aliases.
	wantErr(t, e, `create edge similar with vertices (ProductVtx, ProductVtx) where ProductVtx.id = ProductVtx.id`, "distinct aliases")
	wantOK(t, e, `create edge similar with vertices (ProductVtx as A, ProductVtx as B) where A.producer = B.producer`)
	// Where clause must join the endpoints.
	wantErr(t, e, `create edge broken with vertices (ProductVtx, ProducerVtx) where ProductVtx.price > 3`, "join")
	// Cross-source non-equality conditions are not supported.
	wantErr(t, e, `create edge broken with vertices (ProductVtx, ProducerVtx) where ProductVtx.producer > ProducerVtx.id`, "equality")
	// Unqualified columns in edge declarations are ambiguous by design.
	wantErr(t, e, `create edge broken with vertices (ProductVtx, ProducerVtx) where producer = id`, "unqualified")
}

func TestAnalyzedShapes(t *testing.T) {
	e := fixture(t)
	st, err := analyze(t, e, `select TypeCount.id from graph
ReviewVtx ( ) --reviewFor--> def TypeCount: ProductVtx (price > 10)`)
	if err == nil {
		_ = st
		sel := st.(*sema.Select)
		if len(sel.GraphAlts) != 1 {
			t.Fatalf("alts = %d", len(sel.GraphAlts))
		}
		pat := sel.GraphAlts[0].Pattern
		if len(pat.Nodes) != 2 || len(pat.Edges) != 1 {
			t.Errorf("pattern shape %d nodes %d edges", len(pat.Nodes), len(pat.Edges))
		}
		// reviewFor is declared Review→Product and the path writes the
		// Review step first (node 0), so the normalised edge is 0→1.
		if pat.Edges[0].Src != 0 || pat.Edges[0].Dst != 1 {
			t.Errorf("edge direction normalised wrong: %d→%d", pat.Edges[0].Src, pat.Edges[0].Dst)
		}
	} else {
		t.Fatal(err)
	}
}

func TestSetLabelCopiesCondition(t *testing.T) {
	e := fixture(t)
	// A same-path set-label reference gets the defining step's type and
	// condition (Eq. 7): the reference node's condition must not be nil.
	st, err := analyze(t, e, `select * from graph
def y: ProductVtx (price > 10) --producer--> ProducerVtx ( ) <--producer-- y
into subgraph g`)
	if err != nil {
		t.Fatal(err)
	}
	pat := st.(*sema.Select).GraphAlts[0].Pattern
	if len(pat.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3 (set label makes a fresh node)", len(pat.Nodes))
	}
	if pat.Nodes[2].Cond == nil {
		t.Error("set-label reference must copy the defining condition")
	}
	if pat.Nodes[2].Type != pat.Nodes[0].Type {
		t.Error("set-label reference must copy the defining type")
	}
}

func TestForeachUnifies(t *testing.T) {
	e := fixture(t)
	st, err := analyze(t, e, `select * from graph
foreach y: ProductVtx ( ) --producer--> ProducerVtx ( ) <--producer-- y
into subgraph g`)
	if err != nil {
		t.Fatal(err)
	}
	pat := st.(*sema.Select).GraphAlts[0].Pattern
	if len(pat.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2 (foreach unifies into a cycle)", len(pat.Nodes))
	}
}
