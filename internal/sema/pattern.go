// Package sema implements GraQL static query analysis (paper §III-A):
// name resolution against the catalog, strong type checking of conditions
// (e.g. rejecting a comparison of a date with a float), well-formedness of
// path queries, label scoping, and the restrictions on variant steps. Its
// output is an analysed, resolved form of each statement that the
// execution engine consumes directly.
package sema

import (
	"graql/internal/expr"
	"graql/internal/graph"
)

// Pattern is the analysed form of one and-composition of simple path
// queries (paper §II-B3): a connected pattern graph whose nodes are vertex
// steps and whose edges are edge steps or path-regular-expression
// fragments. Element-wise ("foreach") label references unify into a single
// node; set ("def") label references become independent nodes with the
// same type and condition (the paper's Eq. 7 equivalence).
type Pattern struct {
	Nodes []*Node
	Edges []*PEdge
	// StepOrder lists the steps in source order across the composed
	// paths (with unified nodes appearing at first occurrence only).
	// "select *" and subgraph capture use this ordering.
	StepOrder []StepRef
}

// StepRef addresses a pattern node or edge in source order.
type StepRef struct {
	IsEdge bool
	Index  int
}

// Node is one pattern vertex (a vertex step after resolution).
type Node struct {
	ID int
	// Type is the concrete vertex type, or nil for a "[ ]" variant step.
	Type *graph.VertexType
	// SameTypeAs constrains a variant node to take the same concrete
	// type as another node (a set-labelled type-matching step, paper
	// Eq. 12); -1 when unconstrained.
	SameTypeAs int
	// Cond is the resolved step condition (nil = no filter). References
	// use pattern source numbering: nodes are sources [0, len(Nodes));
	// edges are sources [len(Nodes), len(Nodes)+len(Edges)).
	Cond expr.Expr
	// Seed names a prior subgraph result restricting this step's start
	// set (Fig. 12), or "".
	Seed string
	// Labels are the label names bound to this node.
	Labels []string
	// Foreach reports whether the node carries an element-wise label.
	Foreach bool
	// Poisoned marks a node whose step failed to resolve (unknown type,
	// bad label, ...). The analyzer keeps building the pattern around it
	// to find further independent problems, but suppresses cascading
	// diagnostics about the node itself. Poisoned patterns never execute.
	Poisoned bool
}

// PEdge is one pattern edge (an edge step or regex fragment). Direction is
// normalised: Src/Dst are pattern node ids such that the underlying edge
// type's source vertex is at Src.
type PEdge struct {
	ID  int
	Src int
	Dst int
	// Type is the concrete edge type, or nil for a variant or regex
	// step.
	Type *graph.EdgeType
	// Cond is the resolved edge condition (concrete-typed steps only).
	Cond expr.Expr
	// Regex is non-nil for a path-regular-expression fragment; Type is
	// then nil and the fragment's own step specs live in the program.
	Regex *Regex
	// Labels are the label names bound to this edge.
	Labels []string
	// Poisoned marks an edge whose step failed to resolve; see
	// Node.Poisoned.
	Poisoned bool
}

// Regex is an analysed path regular expression (Fig. 10): a fragment of
// (edge, vertex) step specs repeated between Min and Max times (Max < 0 =
// unbounded). Conditions and labels are not permitted inside regex
// fragments (variant steps admit no conditions, §II-B4).
type Regex struct {
	Steps []RegexStep
	Min   int
	Max   int
}

// RegexStep is one (edge, landing-vertex) pair inside a regex fragment.
// Nil types are variant ("[ ]") specs matching any type.
type RegexStep struct {
	Edge *graph.EdgeType
	Out  bool // traversal direction relative to the fragment's travel
	Vtx  *graph.VertexType
}

// SourceID returns the condition-reference source number for node n.
func (p *Pattern) SourceID(n *Node) int { return n.ID }

// EdgeSourceID returns the condition-reference source number for edge e.
func (p *Pattern) EdgeSourceID(e *PEdge) int { return len(p.Nodes) + e.ID }

// NodeByLabel returns the node carrying the given label, or nil.
func (p *Pattern) NodeByLabel(name string) *Node {
	for _, n := range p.Nodes {
		for _, l := range n.Labels {
			if l == name {
				return n
			}
		}
	}
	return nil
}

// EdgeByLabel returns the edge carrying the given label, or nil.
func (p *Pattern) EdgeByLabel(name string) *PEdge {
	for _, e := range p.Edges {
		for _, l := range e.Labels {
			if l == name {
				return e
			}
		}
	}
	return nil
}

// AdjacentEdges returns the pattern edges incident on node id.
func (p *Pattern) AdjacentEdges(id int) []*PEdge {
	var out []*PEdge
	for _, e := range p.Edges {
		if e.Src == id || e.Dst == id {
			out = append(out, e)
		}
	}
	return out
}
