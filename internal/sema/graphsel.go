package sema

import (
	"sort"
	"strings"

	"graql/internal/ast"
	"graql/internal/diag"
	"graql/internal/expr"
	"graql/internal/graph"
	"graql/internal/table"
)

// Label semantics implemented here (paper §II-B2/B3, Eqs. 6–8):
//
//   - "foreach x:" (element-wise) — every later reference to x denotes the
//     same vertex instance, so reference steps unify into the defining
//     pattern node.
//   - "def X:" referenced later in the same path — the paper's Eq. 7
//     equivalence: the reference is an independent step with the same
//     vertex type and the same condition as the defining step.
//   - "def X:" referenced from an and-composed path — the composed path's
//     step must satisfy ℓ ∧ q2(j−1); the reference shares the defining
//     node, intersecting the matched sets at that step.
func (a *Analyzer) analyzeGraphSelect(s *ast.Select) Stmt {
	out := &Select{Decl: s, Explain: s.Explain, Analyze: s.Analyze, Top: s.Top, Distinct: s.Distinct, Star: s.Star, Into: s.Into}
	if s.Where != nil {
		a.errorf(expr.SpanOf(s.Where), diag.StatementMisuse, "graph selects take conditions on query steps, not a where clause")
	}
	if len(s.GroupBy) > 0 {
		a.errorf(s.GroupBy[0].Loc, diag.GroupingRule, "group by requires a table select (capture the graph result with 'into table' first)")
	}
	for _, it := range s.Items {
		if it.Agg != ast.AggNone || it.AggStar {
			a.errorf(it.Loc, diag.GroupingRule, "aggregates require a table select (capture the graph result with 'into table' first)")
		}
	}

	for _, term := range s.Graph.Terms {
		before := a.errorCount()
		pat, b := a.buildPattern(term)
		if a.errorCount() > before {
			// The pattern itself is broken; resolving the projection
			// against it would only cascade.
			continue
		}
		a.lintPattern(term)
		alt := &GraphAlt{Pattern: pat}
		schema, ok := a.resolveGraphProj(s, pat, alt)
		if !ok {
			continue
		}
		a.lintUnusedLabels(s, b)
		if out.GraphAlts == nil {
			out.OutSchema = schema
		} else if !schemaEqual(out.OutSchema, schema) {
			a.errorf(diag.Span{}, diag.ProjectionRule, "or-composed path queries produce different output schemas")
		}
		out.GraphAlts = append(out.GraphAlts, alt)
	}

	if s.Into.Kind != ast.IntoSubgraph {
		if !a.hasErrors() {
			if err := out.OutSchema.Validate(); err != nil {
				a.errorf(diag.Span{}, diag.ProjectionRule, "select output: %s (use labels or 'as' aliases)", strings.TrimPrefix(err.Error(), "graql: "))
			}
			for _, k := range s.OrderBy {
				col := out.OutSchema.Index(k.Ref.Name)
				if k.Ref.Qualifier != "" || col < 0 {
					a.errorf(k.Ref.Loc, diag.OrderByRule, "order by %s does not name an output column", k.Ref)
					continue
				}
				out.OrderBy = append(out.OrderBy, OrderKey{Col: col, Desc: k.Desc})
			}
		}
	} else if len(s.OrderBy) > 0 {
		a.errorf(s.OrderBy[0].Ref.Loc, diag.OrderByRule, "order by does not apply to a subgraph result")
	}
	if a.hasErrors() {
		return nil
	}
	return out
}

// errorCount returns the number of error diagnostics recorded so far for
// the current statement.
func (a *Analyzer) errorCount() int { return len(a.diags.Errors()) }

// lintPattern warns when an and-composition has no selective anchor at
// all: no step condition anywhere and no seeded step. With an anchor,
// unbounded repetition and [ ] variant steps are the normal exploration
// idioms; without one, an unbounded regex can expand to the whole graph
// (GQL1008) and a variant vertex step multiplies the match set across
// every vertex type (GQL1009). These feed the same cardinality story as
// EXPLAIN's est_rows: both warnings mark patterns whose static upper
// bound is unbounded.
func (a *Analyzer) lintPattern(term *ast.PathAnd) {
	anchored := false
	var unbounded []*ast.RegexGroup
	var variants []*ast.VertexStep
	for _, path := range term.Paths {
		for _, el := range path.Elems {
			switch e := el.(type) {
			case *ast.VertexStep:
				if e.Cond != nil || e.SeedGraph != "" {
					anchored = true
				}
				if e.Variant {
					variants = append(variants, e)
				}
			case *ast.EdgeStep:
				if e.Cond != nil {
					anchored = true
				}
			case *ast.RegexGroup:
				if e.Max < 0 {
					unbounded = append(unbounded, e)
				}
			}
		}
	}
	if anchored {
		return
	}
	for _, g := range unbounded {
		a.warnf(g.Loc, diag.ExplodingExpansion,
			"unbounded repetition in a pattern with no condition or seed can expand to the whole graph; add a step condition or a {n,m} bound")
	}
	for _, v := range variants {
		a.warnf(v.Loc, diag.CrossProduct,
			"[ ] variant step in a pattern with no condition or seed matches every vertex of every type; add a condition or a concrete type")
	}
}

// lintUnusedLabels warns about labels that neither a condition nor the
// projection ever references. A "select *" uses every label for display
// names, so it marks nothing unused.
func (a *Analyzer) lintUnusedLabels(s *ast.Select, b *patternBuilder) {
	if s.Star {
		return
	}
	for _, it := range s.Items {
		r, ok := it.Expr.(*expr.Ref)
		if !ok {
			continue
		}
		if info, ok := b.labels[r.Name]; ok {
			info.used = true
		}
		if info, ok := b.labels[r.Qualifier]; r.Qualifier != "" && ok {
			info.used = true
		}
	}
	names := make([]string, 0, len(b.labels))
	for name := range b.labels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if info := b.labels[name]; !info.used {
			a.warnf(info.loc, diag.UnusedLabel, "label %s is defined but never used", name)
		}
	}
}

func schemaEqual(a, b table.Schema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i].Name, b[i].Name) || a[i].Type.Kind != b[i].Type.Kind {
			return false
		}
	}
	return true
}

type labelInfo struct {
	kind    ast.LabelKind
	isEdge  bool
	node    *Node
	edge    *PEdge
	pathIdx int       // index of the path that defined the label
	loc     diag.Span // span of the defining label name
	used    bool      // referenced by a later step, condition or projection
}

type patternBuilder struct {
	a      *Analyzer
	pat    *Pattern
	labels map[string]*labelInfo
	// nodeConds collects each node's unresolved step conditions; they
	// are resolved once the whole pattern is known so that conditions
	// may reference labels defined later in source order.
	nodeConds [][]expr.Expr
	edgeConds []expr.Expr
	shared    bool // a step of the current path referenced a shared label
	curPath   int  // index of the path being built
}

// buildPattern assembles the pattern graph for one and-composition,
// recording every step-level problem it finds. Unresolvable steps become
// poisoned placeholder nodes so the rest of the composition is still
// checked; the connectivity check runs only on structurally clean
// patterns (a half-built path is trivially "disconnected").
func (a *Analyzer) buildPattern(term *ast.PathAnd) (*Pattern, *patternBuilder) {
	b := &patternBuilder{a: a, pat: &Pattern{}, labels: make(map[string]*labelInfo)}
	before := a.errorCount()
	for pi, path := range term.Paths {
		b.shared = false
		b.curPath = pi
		ok := b.addPath(path)
		if pi > 0 && ok && !b.shared {
			a.errorf(pathSpan(path), diag.LabelRule, "and-composed path queries must share a label (paper §II-B3)")
		}
	}
	if a.errorCount() == before {
		b.checkConnected()
	}
	b.resolveConds()
	return b.pat, b
}

// pathSpan covers a path's first through last element.
func pathSpan(path *ast.Path) diag.Span {
	var s diag.Span
	for _, el := range path.Elems {
		s = s.Cover(elemSpan(el))
	}
	return s
}

func elemSpan(el ast.PathElem) diag.Span {
	switch e := el.(type) {
	case *ast.VertexStep:
		return e.Loc
	case *ast.EdgeStep:
		return e.Loc
	case *ast.RegexGroup:
		return e.Loc
	}
	return diag.Span{}
}

func (b *patternBuilder) addPath(path *ast.Path) bool {
	if len(path.Elems) == 0 || len(path.Elems)%2 == 0 {
		b.a.errorf(pathSpan(path), diag.MalformedPath, "malformed path query: must start and end with a vertex step")
		return false
	}
	cur := b.vertexStep(path.Elems[0].(*ast.VertexStep))
	for i := 1; i < len(path.Elems); i += 2 {
		// The vertex node must exist before the edge can reference it,
		// but StepOrder must list the edge first (source order); swap
		// the two entries after building when the vertex was new.
		before := len(b.pat.StepOrder)
		next := b.vertexStep(path.Elems[i+1].(*ast.VertexStep))
		vertexAppended := len(b.pat.StepOrder) > before
		switch e := path.Elems[i].(type) {
		case *ast.EdgeStep:
			b.edgeStep(e, cur, next)
		case *ast.RegexGroup:
			b.regexGroup(e, cur, next)
		default:
			b.a.errorf(pathSpan(path), diag.MalformedPath, "malformed path query: expected an edge step")
			return false
		}
		if vertexAppended {
			so := b.pat.StepOrder
			so[len(so)-1], so[len(so)-2] = so[len(so)-2], so[len(so)-1]
		}
		cur = next
	}
	return true
}

func (b *patternBuilder) newNode() *Node {
	n := &Node{ID: len(b.pat.Nodes), SameTypeAs: -1}
	b.pat.Nodes = append(b.pat.Nodes, n)
	b.nodeConds = append(b.nodeConds, nil)
	b.pat.StepOrder = append(b.pat.StepOrder, StepRef{Index: n.ID})
	return n
}

// poisonNode creates a placeholder for an unresolvable vertex step so
// pattern building can continue.
func (b *patternBuilder) poisonNode() *Node {
	n := b.newNode()
	n.Poisoned = true
	return n
}

func (b *patternBuilder) registerLabel(def *ast.LabelDef, n *Node, e *PEdge) {
	if def == nil {
		return
	}
	if _, dup := b.labels[def.Name]; dup {
		b.a.errorf(def.Loc, diag.DuplicateName, "label %s already defined", def.Name)
		return
	}
	info := &labelInfo{kind: def.Kind, pathIdx: b.curPath, loc: def.Loc}
	if n != nil {
		info.node = n
		n.Labels = append(n.Labels, def.Name)
		if def.Kind == ast.LabelForeach {
			n.Foreach = true
		}
	} else {
		info.isEdge = true
		info.edge = e
		e.Labels = append(e.Labels, def.Name)
	}
	b.labels[def.Name] = info
}

// vertexStep resolves one vertex step into a pattern node, creating,
// copying or unifying per the label rules above. Unresolvable steps are
// diagnosed and replaced with poisoned placeholder nodes.
func (b *patternBuilder) vertexStep(step *ast.VertexStep) *Node {
	g := b.a.Cat.Graph()

	// Variant "[ ]" step.
	if step.Variant {
		if step.Cond != nil {
			b.a.errorf(expr.SpanOf(step.Cond).Cover(step.Loc), diag.VariantRestrict, "conditional expressions are not allowed on [ ] variant steps (paper §II-B4)")
		}
		n := b.newNode()
		b.registerLabel(step.Label, n, nil)
		return n
	}

	// Seeded step resQ1.Vn (Fig. 12).
	if step.SeedGraph != "" {
		if b.a.Cat.Subgraph(step.SeedGraph) == nil {
			b.a.errorf(step.Loc, diag.UnknownSubgraph, "unknown subgraph %s", step.SeedGraph)
		}
		vt := g.VertexType(step.Name)
		if vt == nil {
			b.a.errorf(step.Loc, diag.UnknownVertex, "unknown vertex type %s in seeded step %s.%s", step.Name, step.SeedGraph, step.Name)
			n := b.poisonNode()
			b.registerLabel(step.Label, n, nil)
			return n
		}
		n := b.newNode()
		n.Type = vt
		n.Seed = step.SeedGraph
		if step.Cond != nil {
			b.nodeConds[n.ID] = append(b.nodeConds[n.ID], step.Cond)
		}
		b.registerLabel(step.Label, n, nil)
		return n
	}

	// Label reference.
	if info, ok := b.labels[step.Name]; ok {
		info.used = true
		if info.isEdge {
			b.a.errorf(step.Loc, diag.LabelRule, "label %s names an edge step and cannot appear as a vertex step", step.Name)
			n := b.poisonNode()
			b.registerLabel(step.Label, n, nil)
			return n
		}
		b.shared = true
		if info.kind == ast.LabelForeach || info.pathIdx != b.curPath {
			// Element-wise references, and references from an
			// and-composed path (the paper's ℓ ∧ q2(j−1) semantics),
			// unify with the defining node.
			n := info.node
			if step.Cond != nil {
				b.nodeConds[n.ID] = append(b.nodeConds[n.ID], step.Cond)
			}
			b.registerLabel(step.Label, n, nil)
			return n
		}
		// In-path set-label reference: the paper's Eq. 7 equivalence — a
		// fresh, independent step with the defining step's vertex type
		// and condition (so a set label may match an open path where a
		// foreach label requires a cycle).
		def := info.node
		n := b.newNode()
		n.Type = def.Type
		n.Poisoned = def.Poisoned
		if def.Type == nil && !def.Poisoned {
			n.SameTypeAs = def.ID
		}
		n.Seed = def.Seed
		b.nodeConds[n.ID] = append(b.nodeConds[n.ID], b.nodeConds[def.ID]...)
		if step.Cond != nil {
			b.nodeConds[n.ID] = append(b.nodeConds[n.ID], step.Cond)
		}
		b.registerLabel(step.Label, n, nil)
		return n
	}

	// Concrete vertex type.
	vt := g.VertexType(step.Name)
	if vt == nil {
		if b.a.Cat.Table(step.Name) != nil {
			b.a.errorf(step.Loc, diag.WrongEntityKind, "%s is a table; a path query step requires a vertex type", step.Name)
		} else if g.EdgeType(step.Name) != nil {
			b.a.errorf(step.Loc, diag.WrongEntityKind, "%s is an edge type; expected a vertex type at this step", step.Name)
		} else {
			b.a.errorf(step.Loc, diag.UnknownVertex, "unknown vertex type or label %s", step.Name)
		}
		n := b.poisonNode()
		b.registerLabel(step.Label, n, nil)
		return n
	}
	n := b.newNode()
	n.Type = vt
	if step.Cond != nil {
		b.nodeConds[n.ID] = append(b.nodeConds[n.ID], step.Cond)
	}
	b.registerLabel(step.Label, n, nil)
	return n
}

func (b *patternBuilder) edgeStep(step *ast.EdgeStep, left, right *Node) {
	g := b.a.Cat.Graph()
	e := &PEdge{ID: len(b.pat.Edges)}
	if step.Out {
		e.Src, e.Dst = left.ID, right.ID
	} else {
		e.Src, e.Dst = right.ID, left.ID
	}
	if step.Variant {
		if step.Cond != nil {
			b.a.errorf(expr.SpanOf(step.Cond).Cover(step.Loc), diag.VariantRestrict, "conditional expressions are not allowed on [ ] variant steps (paper §II-B4)")
		}
	} else {
		et := g.EdgeType(step.Name)
		if et == nil {
			if g.VertexType(step.Name) != nil {
				b.a.errorf(step.Loc, diag.WrongEntityKind, "%s is a vertex type; expected an edge type at this step", step.Name)
			} else {
				b.a.errorf(step.Loc, diag.UnknownEdge, "unknown edge type %s", step.Name)
			}
			e.Poisoned = true
		} else {
			e.Type = et
			// A concrete edge type determines the types of adjacent variant
			// steps and must agree with concrete ones (§III-A path checks).
			b.constrainNodeType(e.Src, et.Src, et.Name, step.Loc)
			b.constrainNodeType(e.Dst, et.Dst, et.Name, step.Loc)
		}
	}
	b.pat.Edges = append(b.pat.Edges, e)
	b.edgeConds = append(b.edgeConds, step.Cond)
	b.pat.StepOrder = append(b.pat.StepOrder, StepRef{IsEdge: true, Index: e.ID})
	b.registerLabel(step.Label, nil, e)
}

func (b *patternBuilder) constrainNodeType(nodeID int, want *graph.VertexType, edgeName string, span diag.Span) {
	n := b.pat.Nodes[nodeID]
	if n.Poisoned {
		return
	}
	if n.Type == nil {
		if n.SameTypeAs < 0 {
			n.Type = want
		}
		return
	}
	if n.Type != want {
		b.a.errorf(span, diag.MalformedPath, "edge %s requires a step of vertex type %s, but the step has type %s",
			edgeName, want.Name, n.Type.Name)
	}
}

func (b *patternBuilder) regexGroup(g *ast.RegexGroup, left, right *Node) {
	gr := b.a.Cat.Graph()
	rx := &Regex{Min: g.Min, Max: g.Max}
	bad := false
	for i := 0; i < len(g.Elems); i += 2 {
		es := g.Elems[i].(*ast.EdgeStep)
		vs := g.Elems[i+1].(*ast.VertexStep)
		if es.Cond != nil || vs.Cond != nil {
			b.a.errorf(g.Loc, diag.RegexRestriction, "conditions are not allowed inside a path regular expression")
			bad = true
		}
		if es.Label != nil || vs.Label != nil {
			b.a.errorf(g.Loc, diag.RegexRestriction, "labels are not allowed inside a path regular expression (paper §II-B4)")
			bad = true
		}
		var st RegexStep
		st.Out = es.Out
		if !es.Variant {
			et := gr.EdgeType(es.Name)
			if et == nil {
				b.a.errorf(es.Loc, diag.UnknownEdge, "unknown edge type %s in path regular expression", es.Name)
				bad = true
			}
			st.Edge = et
		}
		if !vs.Variant {
			if vs.SeedGraph != "" {
				b.a.errorf(vs.Loc, diag.RegexRestriction, "seeded steps are not allowed inside a path regular expression")
				bad = true
			} else {
				vt := gr.VertexType(vs.Name)
				if vt == nil {
					b.a.errorf(vs.Loc, diag.UnknownVertex, "unknown vertex type %s in path regular expression", vs.Name)
					bad = true
				}
				st.Vtx = vt
			}
		}
		rx.Steps = append(rx.Steps, st)
	}
	e := &PEdge{ID: len(b.pat.Edges), Src: left.ID, Dst: right.ID, Regex: rx, Poisoned: bad}
	b.pat.Edges = append(b.pat.Edges, e)
	b.edgeConds = append(b.edgeConds, nil)
	b.pat.StepOrder = append(b.pat.StepOrder, StepRef{IsEdge: true, Index: e.ID})
}

func (b *patternBuilder) checkConnected() {
	n := len(b.pat.Nodes)
	if n <= 1 {
		return
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range b.pat.Edges {
		parent[find(e.Src)] = find(e.Dst)
	}
	root := find(0)
	for i := 1; i < n; i++ {
		if find(i) != root {
			b.a.errorf(diag.Span{}, diag.Disconnected, "path pattern is disconnected; and-composed paths must be linked by foreach labels")
			return
		}
	}
}
