package sema

import (
	"fmt"
	"strings"

	"graql/internal/ast"
	"graql/internal/expr"
	"graql/internal/graph"
	"graql/internal/table"
)

// Label semantics implemented here (paper §II-B2/B3, Eqs. 6–8):
//
//   - "foreach x:" (element-wise) — every later reference to x denotes the
//     same vertex instance, so reference steps unify into the defining
//     pattern node.
//   - "def X:" referenced later in the same path — the paper's Eq. 7
//     equivalence: the reference is an independent step with the same
//     vertex type and the same condition as the defining step.
//   - "def X:" referenced from an and-composed path — the composed path's
//     step must satisfy ℓ ∧ q2(j−1); the reference shares the defining
//     node, intersecting the matched sets at that step.
func (a *Analyzer) analyzeGraphSelect(s *ast.Select) (Stmt, error) {
	out := &Select{Decl: s, Explain: s.Explain, Analyze: s.Analyze, Top: s.Top, Distinct: s.Distinct, Star: s.Star, Into: s.Into}
	if s.Where != nil {
		return nil, fmt.Errorf("graql: graph selects take conditions on query steps, not a where clause")
	}
	if len(s.GroupBy) > 0 {
		return nil, fmt.Errorf("graql: group by requires a table select (capture the graph result with 'into table' first)")
	}
	for _, it := range s.Items {
		if it.Agg != ast.AggNone || it.AggStar {
			return nil, fmt.Errorf("graql: aggregates require a table select (capture the graph result with 'into table' first)")
		}
	}

	for _, term := range s.Graph.Terms {
		pat, err := a.buildPattern(term)
		if err != nil {
			return nil, err
		}
		alt := &GraphAlt{Pattern: pat}
		schema, err := a.resolveGraphProj(s, pat, alt)
		if err != nil {
			return nil, err
		}
		if out.GraphAlts == nil {
			out.OutSchema = schema
		} else if !schemaEqual(out.OutSchema, schema) {
			return nil, fmt.Errorf("graql: or-composed path queries produce different output schemas")
		}
		out.GraphAlts = append(out.GraphAlts, alt)
	}

	if s.Into.Kind != ast.IntoSubgraph {
		if err := out.OutSchema.Validate(); err != nil {
			return nil, fmt.Errorf("graql: select output: %w (use labels or 'as' aliases)", err)
		}
		for _, k := range s.OrderBy {
			col := out.OutSchema.Index(k.Ref.Name)
			if k.Ref.Qualifier != "" || col < 0 {
				return nil, fmt.Errorf("graql: order by %s does not name an output column", k.Ref)
			}
			out.OrderBy = append(out.OrderBy, OrderKey{Col: col, Desc: k.Desc})
		}
	} else if len(s.OrderBy) > 0 {
		return nil, fmt.Errorf("graql: order by does not apply to a subgraph result")
	}
	return out, nil
}

func schemaEqual(a, b table.Schema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i].Name, b[i].Name) || a[i].Type.Kind != b[i].Type.Kind {
			return false
		}
	}
	return true
}

type labelInfo struct {
	kind    ast.LabelKind
	isEdge  bool
	node    *Node
	edge    *PEdge
	pathIdx int // index of the path that defined the label
}

type patternBuilder struct {
	a      *Analyzer
	pat    *Pattern
	labels map[string]*labelInfo
	// nodeConds collects each node's unresolved step conditions; they
	// are resolved once the whole pattern is known so that conditions
	// may reference labels defined later in source order.
	nodeConds [][]expr.Expr
	edgeConds []expr.Expr
	shared    bool // a step of the current path referenced a shared label
	curPath   int  // index of the path being built
}

func (a *Analyzer) buildPattern(term *ast.PathAnd) (*Pattern, error) {
	b := &patternBuilder{a: a, pat: &Pattern{}, labels: make(map[string]*labelInfo)}
	for pi, path := range term.Paths {
		b.shared = false
		b.curPath = pi
		if err := b.addPath(path); err != nil {
			return nil, err
		}
		if pi > 0 && !b.shared {
			return nil, fmt.Errorf("graql: and-composed path queries must share a label (paper §II-B3)")
		}
	}
	if err := b.checkConnected(); err != nil {
		return nil, err
	}
	if err := b.resolveConds(); err != nil {
		return nil, err
	}
	return b.pat, nil
}

func (b *patternBuilder) addPath(path *ast.Path) error {
	if len(path.Elems) == 0 || len(path.Elems)%2 == 0 {
		return fmt.Errorf("graql: malformed path query: must start and end with a vertex step")
	}
	cur, err := b.vertexStep(path.Elems[0].(*ast.VertexStep), true)
	if err != nil {
		return err
	}
	for i := 1; i < len(path.Elems); i += 2 {
		// The vertex node must exist before the edge can reference it,
		// but StepOrder must list the edge first (source order); swap
		// the two entries after building when the vertex was new.
		before := len(b.pat.StepOrder)
		next, err := b.vertexStep(path.Elems[i+1].(*ast.VertexStep), false)
		if err != nil {
			return err
		}
		vertexAppended := len(b.pat.StepOrder) > before
		switch e := path.Elems[i].(type) {
		case *ast.EdgeStep:
			if err := b.edgeStep(e, cur, next); err != nil {
				return err
			}
		case *ast.RegexGroup:
			if err := b.regexGroup(e, cur, next); err != nil {
				return err
			}
		default:
			return fmt.Errorf("graql: malformed path query: expected an edge step")
		}
		if vertexAppended {
			so := b.pat.StepOrder
			so[len(so)-1], so[len(so)-2] = so[len(so)-2], so[len(so)-1]
		}
		cur = next
	}
	return nil
}

func (b *patternBuilder) newNode() *Node {
	n := &Node{ID: len(b.pat.Nodes), SameTypeAs: -1}
	b.pat.Nodes = append(b.pat.Nodes, n)
	b.nodeConds = append(b.nodeConds, nil)
	b.pat.StepOrder = append(b.pat.StepOrder, StepRef{Index: n.ID})
	return n
}

func (b *patternBuilder) registerLabel(def *ast.LabelDef, n *Node, e *PEdge) error {
	if def == nil {
		return nil
	}
	if _, dup := b.labels[def.Name]; dup {
		return fmt.Errorf("graql: label %s already defined", def.Name)
	}
	info := &labelInfo{kind: def.Kind, pathIdx: b.curPath}
	if n != nil {
		info.node = n
		n.Labels = append(n.Labels, def.Name)
		if def.Kind == ast.LabelForeach {
			n.Foreach = true
		}
	} else {
		info.isEdge = true
		info.edge = e
		e.Labels = append(e.Labels, def.Name)
	}
	b.labels[def.Name] = info
	return nil
}

// vertexStep resolves one vertex step into a pattern node, creating,
// copying or unifying per the label rules above.
func (b *patternBuilder) vertexStep(step *ast.VertexStep, first bool) (*Node, error) {
	g := b.a.Cat.Graph()

	// Variant "[ ]" step.
	if step.Variant {
		if step.Cond != nil {
			return nil, fmt.Errorf("graql: conditional expressions are not allowed on [ ] variant steps (paper §II-B4)")
		}
		n := b.newNode()
		return n, b.registerLabel(step.Label, n, nil)
	}

	// Seeded step resQ1.Vn (Fig. 12).
	if step.SeedGraph != "" {
		if b.a.Cat.Subgraph(step.SeedGraph) == nil {
			return nil, fmt.Errorf("graql: unknown subgraph %s", step.SeedGraph)
		}
		vt := g.VertexType(step.Name)
		if vt == nil {
			return nil, fmt.Errorf("graql: unknown vertex type %s in seeded step %s.%s", step.Name, step.SeedGraph, step.Name)
		}
		n := b.newNode()
		n.Type = vt
		n.Seed = step.SeedGraph
		if step.Cond != nil {
			b.nodeConds[n.ID] = append(b.nodeConds[n.ID], step.Cond)
		}
		return n, b.registerLabel(step.Label, n, nil)
	}

	// Label reference.
	if info, ok := b.labels[step.Name]; ok {
		if info.isEdge {
			return nil, fmt.Errorf("graql: label %s names an edge step and cannot appear as a vertex step", step.Name)
		}
		b.shared = true
		if info.kind == ast.LabelForeach || info.pathIdx != b.curPath {
			// Element-wise references, and references from an
			// and-composed path (the paper's ℓ ∧ q2(j−1) semantics),
			// unify with the defining node.
			n := info.node
			if step.Cond != nil {
				b.nodeConds[n.ID] = append(b.nodeConds[n.ID], step.Cond)
			}
			return n, b.registerLabel(step.Label, n, nil)
		}
		// In-path set-label reference: the paper's Eq. 7 equivalence — a
		// fresh, independent step with the defining step's vertex type
		// and condition (so a set label may match an open path where a
		// foreach label requires a cycle).
		def := info.node
		n := b.newNode()
		n.Type = def.Type
		if def.Type == nil {
			n.SameTypeAs = def.ID
		}
		n.Seed = def.Seed
		b.nodeConds[n.ID] = append(b.nodeConds[n.ID], b.nodeConds[def.ID]...)
		if step.Cond != nil {
			b.nodeConds[n.ID] = append(b.nodeConds[n.ID], step.Cond)
		}
		return n, b.registerLabel(step.Label, n, nil)
	}

	// Concrete vertex type.
	vt := g.VertexType(step.Name)
	if vt == nil {
		if b.a.Cat.Table(step.Name) != nil {
			return nil, fmt.Errorf("graql: %s is a table; a path query step requires a vertex type", step.Name)
		}
		if g.EdgeType(step.Name) != nil {
			return nil, fmt.Errorf("graql: %s is an edge type; expected a vertex type at this step", step.Name)
		}
		return nil, fmt.Errorf("graql: unknown vertex type or label %s", step.Name)
	}
	n := b.newNode()
	n.Type = vt
	if step.Cond != nil {
		b.nodeConds[n.ID] = append(b.nodeConds[n.ID], step.Cond)
	}
	return n, b.registerLabel(step.Label, n, nil)
}

func (b *patternBuilder) edgeStep(step *ast.EdgeStep, left, right *Node) error {
	g := b.a.Cat.Graph()
	e := &PEdge{ID: len(b.pat.Edges)}
	if step.Out {
		e.Src, e.Dst = left.ID, right.ID
	} else {
		e.Src, e.Dst = right.ID, left.ID
	}
	if step.Variant {
		if step.Cond != nil {
			return fmt.Errorf("graql: conditional expressions are not allowed on [ ] variant steps (paper §II-B4)")
		}
	} else {
		et := g.EdgeType(step.Name)
		if et == nil {
			if g.VertexType(step.Name) != nil {
				return fmt.Errorf("graql: %s is a vertex type; expected an edge type at this step", step.Name)
			}
			return fmt.Errorf("graql: unknown edge type %s", step.Name)
		}
		e.Type = et
		// A concrete edge type determines the types of adjacent variant
		// steps and must agree with concrete ones (§III-A path checks).
		if err := b.constrainNodeType(e.Src, et.Src, et.Name); err != nil {
			return err
		}
		if err := b.constrainNodeType(e.Dst, et.Dst, et.Name); err != nil {
			return err
		}
	}
	b.pat.Edges = append(b.pat.Edges, e)
	b.edgeConds = append(b.edgeConds, step.Cond)
	b.pat.StepOrder = append(b.pat.StepOrder, StepRef{IsEdge: true, Index: e.ID})
	return b.registerLabel(step.Label, nil, e)
}

func (b *patternBuilder) constrainNodeType(nodeID int, want *graph.VertexType, edgeName string) error {
	n := b.pat.Nodes[nodeID]
	if n.Type == nil {
		if n.SameTypeAs < 0 {
			n.Type = want
		}
		return nil
	}
	if n.Type != want {
		return fmt.Errorf("graql: edge %s requires a step of vertex type %s, but the step has type %s",
			edgeName, want.Name, n.Type.Name)
	}
	return nil
}

func (b *patternBuilder) regexGroup(g *ast.RegexGroup, left, right *Node) error {
	gr := b.a.Cat.Graph()
	rx := &Regex{Min: g.Min, Max: g.Max}
	for i := 0; i < len(g.Elems); i += 2 {
		es := g.Elems[i].(*ast.EdgeStep)
		vs := g.Elems[i+1].(*ast.VertexStep)
		if es.Cond != nil || vs.Cond != nil {
			return fmt.Errorf("graql: conditions are not allowed inside a path regular expression")
		}
		if es.Label != nil || vs.Label != nil {
			return fmt.Errorf("graql: labels are not allowed inside a path regular expression (paper §II-B4)")
		}
		var st RegexStep
		st.Out = es.Out
		if !es.Variant {
			et := gr.EdgeType(es.Name)
			if et == nil {
				return fmt.Errorf("graql: unknown edge type %s in path regular expression", es.Name)
			}
			st.Edge = et
		}
		if !vs.Variant {
			if vs.SeedGraph != "" {
				return fmt.Errorf("graql: seeded steps are not allowed inside a path regular expression")
			}
			vt := gr.VertexType(vs.Name)
			if vt == nil {
				return fmt.Errorf("graql: unknown vertex type %s in path regular expression", vs.Name)
			}
			st.Vtx = vt
		}
		rx.Steps = append(rx.Steps, st)
	}
	e := &PEdge{ID: len(b.pat.Edges), Src: left.ID, Dst: right.ID, Regex: rx}
	b.pat.Edges = append(b.pat.Edges, e)
	b.edgeConds = append(b.edgeConds, nil)
	b.pat.StepOrder = append(b.pat.StepOrder, StepRef{IsEdge: true, Index: e.ID})
	return nil
}

func (b *patternBuilder) checkConnected() error {
	n := len(b.pat.Nodes)
	if n <= 1 {
		return nil
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range b.pat.Edges {
		parent[find(e.Src)] = find(e.Dst)
	}
	root := find(0)
	for i := 1; i < n; i++ {
		if find(i) != root {
			return fmt.Errorf("graql: path pattern is disconnected; and-composed paths must be linked by foreach labels")
		}
	}
	return nil
}
