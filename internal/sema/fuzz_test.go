package sema_test

import (
	"testing"

	"graql/internal/diag"
	"graql/internal/exec"
	"graql/internal/parser"
	"graql/internal/sema"
)

// FuzzAnalyze drives the whole static-analysis front-end (parser with
// error recovery, then the diagnostics-collecting analyzer) over
// arbitrary inputs against the fixture catalog. The invariants: no
// panics, every diagnostic carries a registered code and a well-formed
// span, and an erroring Vet never returns a resolved statement.
func FuzzAnalyze(f *testing.F) {
	e := exec.New(exec.Options{CheckOnly: true, ReverseIndexes: true})
	if _, err := e.ExecScript(fixtureDDL, nil); err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		`select id from table Products where price > 5`,
		`select id, label from table Products where added >= '2008-01-01' order by id`,
		`select missing1, missing2, sum(label) from table Products where added > 3.5`,
		`select * from graph ProductVtx ( ) --producer--> ProducerVtx ( ) into subgraph g`,
		`select x.id from graph def x: ProductVtx (price > 10) --producer--> ProducerVtx ( )`,
		`select * from graph ProductVtx ( ) (--reviewFor--> ReviewVtx ( )){1,3} ReviewVtx ( ) into subgraph g`,
		`create table T(id integer, name varchar(10))`,
		`create vertex V(id) from table Products where price > 0`,
		`create edge ee with vertices (ProductVtx, ProducerVtx) where ProductVtx.producer = ProducerVtx.id`,
		`select id from table Products where price > 5 and price < 3`,
		`select id from table Products where id = null`,
		"select id from\ntable Products where\n\tprice > %P%",
		`select 1 + from table`,
		`@#$%^&*`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		script, diags := parser.ParseScript(src)
		checkDiags(t, diags)
		if script == nil {
			return
		}
		for _, st := range script.Stmts {
			an := &sema.Analyzer{Cat: e.Cat}
			out, ds := an.Vet(st)
			checkDiags(t, ds)
			if ds.HasErrors() && out != nil {
				t.Errorf("Vet returned both a statement and errors: %v", ds)
			}
		}
	})
}

// checkDiags asserts the structural invariants every diagnostic must
// satisfy regardless of input.
func checkDiags(t *testing.T, ds diag.List) {
	t.Helper()
	for _, d := range ds {
		if !diag.Registered(d.Code) {
			t.Errorf("unregistered code %s in %v", d.Code, d)
		}
		s := d.Span
		if s.Start < 0 || s.End < s.Start || s.Line < 0 || s.Col < 0 {
			t.Errorf("malformed span %+v in %v", s, d)
		}
		if s.Known() && s.Col < 1 {
			t.Errorf("known span with bad column %+v in %v", s, d)
		}
		if d.Msg == "" {
			t.Errorf("empty message in %v", d)
		}
	}
}
