package server_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"graql/internal/client"
	"graql/internal/exec"
	"graql/internal/obs"
	"graql/internal/server"
)

// denseGraphSetup builds a complete digraph over n vertices: every 4-hop
// traversal explores n^4 paths, so a query whose final step carries a
// contradictory deferred condition (id < A.id and id > A.id) runs for a
// long time and returns zero rows — the ideal runaway statement.
const denseSetup = `
create table Node(id varchar(8))
create table Dense(src varchar(8), dst varchar(8))
create vertex NV(id) from table Node
create edge e with vertices (NV as A, NV as B)
from table Dense
where Dense.src = A.id and Dense.dst = B.id
`

const runawayQuery = `select A.id from graph def A: NV ( ) --e--> def B: NV ( ) --e--> def C: NV ( ) --e--> def D: NV (id < A.id and id > A.id)`

func loadDenseGraph(t *testing.T, eng *exec.Engine, n int) {
	t.Helper()
	var nodes, edges strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&nodes, "n%03d\n", i)
		for j := 0; j < n; j++ {
			fmt.Fprintf(&edges, "n%03d,n%03d\n", i, j)
		}
	}
	if err := eng.IngestReader("Node", strings.NewReader(nodes.String())); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Dense", strings.NewReader(edges.String())); err != nil {
		t.Fatal(err)
	}
}

// TestLiveQueryCancelOverWire is the full ps → cancelq round trip: a
// long-running statement is visible in the live query table with a
// ticking elapsed time and rows-so-far, a second session kills it by id,
// and the original caller gets the structured "canceled" code.
func TestLiveQueryCancelOverWire(t *testing.T) {
	addr, eng, shutdown := startObsServer(t, "")
	defer shutdown()
	if _, err := eng.ExecScript(denseSetup, nil); err != nil {
		t.Fatal(err)
	}
	loadDenseGraph(t, eng, 60)

	// Session 1 fires the runaway query; its response arrives after the
	// cancel lands.
	type execResult struct {
		resp *server.Response
		err  error
	}
	done := make(chan execResult, 1)
	go func() {
		cl, err := client.Dial(addr, "")
		if err != nil {
			done <- execResult{nil, err}
			return
		}
		defer cl.Close()
		resp, err := cl.Exec(runawayQuery, nil)
		done <- execResult{resp, err}
	}()

	// Session 2 watches ps until the statement is visible and has made
	// observable progress, then cancels it by id.
	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// The engine fingerprints the statement's canonical AST rendering, so
	// match the live entry on its normalized text rather than recomputing
	// the hash from the raw wire script.
	deadline := time.Now().Add(30 * time.Second)
	var target obs.QueryInfo
	for {
		if time.Now().After(deadline) {
			t.Fatal("runaway query never showed progress in ps")
		}
		select {
		case r := <-done:
			t.Fatalf("query finished before it could be canceled: resp=%+v err=%v", r.resp, r.err)
		default:
		}
		qs, err := cl.LiveQueries()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, q := range qs {
			if q.State == "running" && strings.HasPrefix(q.Query, "select a.id from graph") {
				target, found = q, true
			}
		}
		// Require live progress: elapsed ticking and rows-so-far counted
		// via the engine's cooperative poll hook.
		if found && target.ElapsedUs > 0 && target.Rows > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := cl.CancelQuery(target.ID); err != nil {
		t.Fatalf("cancelq %d: %v", target.ID, err)
	}

	select {
	case r := <-done:
		if r.err == nil {
			t.Fatalf("canceled query returned success: %+v", r.resp)
		}
		if r.resp == nil || r.resp.Code != server.CodeCanceled {
			t.Fatalf("caller got code %q (err %v), want %q", respCode(r.resp), r.err, server.CodeCanceled)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("query did not abort after cancelq")
	}

	// The canceled statement must be gone from ps and accounted in the
	// statement stats with its cancellation.
	qs, err := cl.LiveQueries()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.ID == target.ID {
			t.Fatalf("canceled query still in ps: %+v", q)
		}
	}
	stats, err := cl.Statements()
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, st := range stats {
		if st.Fingerprint == target.Fingerprint {
			hit = true
			if st.Canceled < 1 || st.Errors < 1 {
				t.Errorf("stmt stats did not count the cancellation: %+v", st)
			}
		}
	}
	if !hit {
		t.Error("canceled statement shape missing from statements")
	}

	// Canceling the now-dead id must surface a structured bad_request.
	if err := cl.CancelQuery(target.ID); err == nil {
		t.Error("cancelq of a finished id should fail")
	}
}

func respCode(r *server.Response) string {
	if r == nil {
		return ""
	}
	return r.Code
}

// TestStatementsAggregationOverWire checks that literal variants of one
// statement shape land on a single fingerprint row with summed totals.
func TestStatementsAggregationOverWire(t *testing.T) {
	addr, eng, shutdown := startObsServer(t, "")
	defer shutdown()
	if _, err := eng.ExecScript(setupScript, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Cities", strings.NewReader("p,US\nq,US\nr,CA\n")); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Roads", strings.NewReader("p,q\nq,r\n")); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	variants := []string{
		`select B.id from graph City (id = 'p') --road--> def B: City ( )`,
		`select B.id from graph City (id = 'q') --road--> def B: City ( )`,
		`select B.id from graph City (id = 'r') --road--> def B: City ( )`,
	}
	for _, q := range variants {
		if _, err := cl.Exec(q, nil); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	stats, err := cl.Statements()
	if err != nil {
		t.Fatal(err)
	}
	var st *obs.StmtStat
	for i := range stats {
		if strings.HasPrefix(stats[i].Query, "select b.id from graph") {
			st = &stats[i]
		}
	}
	if st == nil {
		t.Fatalf("shape not in statements: %+v", stats)
	}
	if st.Calls != 3 {
		t.Errorf("calls = %d, want 3 (variants must aggregate)", st.Calls)
	}
	if st.Rows != 2 { // 'p' and 'q' each match one row, 'r' none
		t.Errorf("rows = %d, want 2", st.Rows)
	}
	if !strings.Contains(st.Query, "?") {
		t.Errorf("normalized query kept its literal: %q", st.Query)
	}
}
