package server

import (
	"context"
	"errors"
	"sync/atomic"

	"graql/internal/obs"
)

// ErrOverloaded is returned by Gate.Acquire when the in-flight limit and
// the wait queue are both full. The front-ends translate it to the
// structured "overloaded" error code, which clients may retry after
// backing off (the rejection happens before any execution starts).
var ErrOverloaded = errors.New("server overloaded: too many queries in flight")

// Gate is the admission controller shared by the TCP and HTTP
// front-ends: at most maxInFlight queries execute concurrently, up to
// maxQueue more wait for a slot, and everything beyond that is rejected
// immediately with ErrOverloaded. A zero maxInFlight disables limiting
// (the gate still maintains the in-flight gauge). A nil *Gate is inert.
type Gate struct {
	sem      chan struct{}
	capacity int64 // maxInFlight + maxQueue
	pending  atomic.Int64
	admitted atomic.Int64

	rejected *obs.Counter
	inflight *obs.Gauge
}

// NewGate builds a gate and registers its observability series
// (graql_queries_rejected_total, graql_queries_in_flight) on reg, so the
// metrics endpoint exposes them even before the first rejection. reg may
// be nil.
func NewGate(maxInFlight, maxQueue int, reg *obs.Registry) *Gate {
	g := &Gate{
		rejected: reg.Counter("graql_queries_rejected_total",
			"queries rejected by admission control (overloaded)"),
		inflight: reg.Gauge("graql_queries_in_flight",
			"queries currently admitted and executing"),
	}
	if maxInFlight > 0 {
		if maxQueue < 0 {
			maxQueue = 0
		}
		g.sem = make(chan struct{}, maxInFlight)
		g.capacity = int64(maxInFlight + maxQueue)
	}
	return g
}

// Acquire admits one query, blocking in the wait queue when all
// execution slots are busy. It fails with ErrOverloaded when the queue
// is full, or with the context's error when the caller's deadline
// expires (or is canceled) while waiting. Every successful Acquire must
// be paired with Release.
func (g *Gate) Acquire(ctx context.Context) error {
	if g == nil {
		return nil
	}
	if g.sem == nil {
		g.admitted.Add(1)
		g.inflight.Add(1)
		return nil
	}
	if g.pending.Add(1) > g.capacity {
		g.pending.Add(-1)
		g.rejected.Inc()
		return ErrOverloaded
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case g.sem <- struct{}{}:
		g.admitted.Add(1)
		g.inflight.Add(1)
		return nil
	case <-ctx.Done():
		g.pending.Add(-1)
		return ctx.Err()
	}
}

// Release returns the slot taken by a successful Acquire.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	g.admitted.Add(-1)
	g.inflight.Add(-1)
	if g.sem == nil {
		return
	}
	<-g.sem
	g.pending.Add(-1)
}

// Pending reports how many callers currently consume capacity: the
// admitted queries plus the ones waiting in the queue.
func (g *Gate) Pending() int64 {
	if g == nil {
		return 0
	}
	return g.pending.Load()
}

// InFlight reports how many queries are admitted right now.
func (g *Gate) InFlight() int64 {
	if g == nil {
		return 0
	}
	return g.admitted.Load()
}
