package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"graql/internal/client"
	"graql/internal/exec"
	"graql/internal/server"
)

// startServerWith is startServer with limits and an admission gate, and
// it also hands back the Server for shutdown tests.
func startServerWith(t *testing.T, limits server.Limits, gate *server.Gate) (addr string, eng *exec.Engine, srv *server.Server, done chan struct{}) {
	t.Helper()
	eng = exec.New(exec.DefaultOptions())
	srv = server.New(eng, "")
	srv.Limits = limits
	srv.Gate = gate
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done = make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		srv.Close()
		ln.Close()
		<-done
	})
	return ln.Addr().String(), eng, srv, done
}

// loadDense populates the engine with the dense synthetic graph whose
// unanchored 3-hop enumeration takes a few hundred ms — long enough for
// deadlines and admission pressure to land mid-query.
func loadDense(t *testing.T, eng *exec.Engine) {
	t.Helper()
	if _, err := eng.ExecScript(`
create table Nodes(id varchar(8))
create table Links(src varchar(8), dst varchar(8))
create vertex N(id) from table Nodes
create edge link with vertices (N as A, N as B)
from table Links
where Links.src = A.id and Links.dst = B.id
`, nil); err != nil {
		t.Fatal(err)
	}
	const n, fanout = 150, 15
	var nodes, links strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&nodes, "v%d\n", i)
		for j := 0; j < fanout; j++ {
			fmt.Fprintf(&links, "v%d,v%d\n", i, (i*7+j*13+1)%n)
		}
	}
	if err := eng.IngestReader("Nodes", strings.NewReader(nodes.String())); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Links", strings.NewReader(links.String())); err != nil {
		t.Fatal(err)
	}
}

const denseSlowQuery = `
select a.id as src, d.id as dst from graph
def a: N ( ) --link--> N ( ) --link--> N ( ) --link--> def d: N ( )
into table SlowT`

const denseQuickQuery = `select B.id from graph N (id = 'v0') --link--> def B: N ( )`

// TestDeadlineOverWire sends timeoutMs=50 on an expensive query and
// expects a structured "deadline" error well under 500ms, with the
// server staying healthy afterwards.
func TestDeadlineOverWire(t *testing.T) {
	addr, eng, _, _ := startServerWith(t, server.Limits{}, nil)
	loadDense(t, eng)

	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	resp, err := cl.ExecTimeout(denseSlowQuery, nil, 50*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want deadline error, got success")
	}
	if resp == nil || resp.Code != server.CodeDeadline {
		t.Fatalf("response code = %+v, want %q", resp, server.CodeDeadline)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("deadline round trip took %v, want < 500ms", elapsed)
	}

	// The session and server survive the abort.
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after abort: %v", err)
	}
	if resp, err := cl.Exec(denseQuickQuery, nil); err != nil {
		t.Fatalf("quick query after abort: %v", err)
	} else if len(resp.Results) != 1 {
		t.Fatalf("quick query results = %+v", resp.Results)
	}
}

// TestServerDefaultDeadline checks Limits.DefaultTimeout applies when a
// request carries no timeoutMs, and MaxTimeout clamps oversized asks.
func TestServerDefaultDeadline(t *testing.T) {
	limits := server.Limits{DefaultTimeout: 50 * time.Millisecond, MaxTimeout: 100 * time.Millisecond}
	addr, eng, _, _ := startServerWith(t, limits, nil)
	loadDense(t, eng)

	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	resp, err := cl.Exec(denseSlowQuery, nil)
	if err == nil {
		t.Fatal("want default-deadline error, got success")
	}
	if resp.Code != server.CodeDeadline {
		t.Fatalf("code = %q, want %q", resp.Code, server.CodeDeadline)
	}

	// An explicit oversized timeout is clamped to MaxTimeout, so the
	// slow query still aborts with the deadline code.
	start := time.Now()
	resp, err = cl.ExecTimeout(denseSlowQuery, nil, time.Hour)
	if err == nil {
		t.Fatal("want clamped-deadline error, got success")
	}
	if resp.Code != server.CodeDeadline {
		t.Fatalf("clamped code = %q, want %q", resp.Code, server.CodeDeadline)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("clamped query took %v, want well under 1s", elapsed)
	}
}

// TestAdmissionRejection saturates a 1-slot gate with a slow query and
// checks the concurrent query is rejected with the overloaded code, and
// that capacity frees up once the slow query finishes.
func TestAdmissionRejection(t *testing.T) {
	gate := server.NewGate(1, 0, nil)
	addr, eng, _, _ := startServerWith(t, server.Limits{}, gate)
	loadDense(t, eng)

	slow, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	fast, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := slow.Exec(denseSlowQuery, nil)
		slowDone <- err
	}()

	// Wait until the slow query actually occupies the gate.
	deadline := time.Now().Add(2 * time.Second)
	for gate.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never acquired the gate")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := fast.Exec(denseQuickQuery, nil)
	if err == nil {
		t.Fatal("want overloaded rejection, got success")
	}
	if resp == nil || resp.Code != server.CodeOverloaded {
		t.Fatalf("response = %+v, want code %q", resp, server.CodeOverloaded)
	}

	if err := <-slowDone; err != nil {
		t.Fatalf("slow query failed: %v", err)
	}
	// Pressure gone: the same session is served now.
	if _, err := fast.Exec(denseQuickQuery, nil); err != nil {
		t.Fatalf("query after pressure released: %v", err)
	}
}

// TestGate exercises the admission gate directly: in-flight cap, queue
// overflow, context-bounded waits and release.
func TestGate(t *testing.T) {
	g := server.NewGate(1, 1, nil)
	ctx := context.Background()

	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if got := g.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}

	// Second caller fits the queue but times out waiting for a slot.
	qctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := g.Acquire(qctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire error = %v, want deadline", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Errorf("queued acquire blocked %v, want ~20ms", time.Since(start))
	}

	// With holder + a (concurrent) queued waiter the third caller is
	// rejected outright.
	waiterIn := make(chan error, 1)
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	go func() { waiterIn <- g.Acquire(wctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for g.Pending() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := g.Acquire(ctx); !errors.Is(err, server.ErrOverloaded) {
		t.Fatalf("overflow acquire error = %v, want ErrOverloaded", err)
	}

	// Releasing the holder admits the queued waiter.
	g.Release()
	if err := <-waiterIn; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	g.Release()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after releases = %d, want 0", got)
	}

	// A nil gate admits everything.
	var nilGate *server.Gate
	if err := nilGate.Acquire(ctx); err != nil {
		t.Fatalf("nil gate acquire: %v", err)
	}
	nilGate.Release()
}

// TestShutdownDrains checks Shutdown lets an in-flight query finish
// inside the drain window, then refuses new connections.
func TestShutdownDrains(t *testing.T) {
	addr, eng, srv, done := startServerWith(t, server.Limits{}, nil)
	loadDense(t, eng)

	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	queryDone := make(chan error, 1)
	go func() {
		_, err := cl.Exec(denseSlowQuery, nil)
		queryDone <- err
	}()
	// Let the query reach the engine before shutting down.
	time.Sleep(30 * time.Millisecond)

	if drained := srv.Shutdown(5 * time.Second); !drained {
		t.Error("Shutdown() = false, want graceful drain")
	}
	if err := <-queryDone; err != nil {
		t.Errorf("in-flight query during drain: %v", err)
	}

	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		conn.Close()
		t.Error("listener still accepting after Shutdown")
	}
}
