package server_test

import (
	"encoding/json"
	"net"
	"strings"
	"testing"

	"graql/internal/client"
	"graql/internal/exec"
	"graql/internal/obs"
	"graql/internal/server"
)

// startObsServer is startServer with a metrics registry attached to the
// engine, for exercising the "metrics" op and the observability wiring.
func startObsServer(t *testing.T, token string) (addr string, eng *exec.Engine, shutdown func()) {
	t.Helper()
	opts := exec.DefaultOptions()
	opts.Obs = obs.New()
	eng = exec.New(opts)
	srv := server.New(eng, token)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), eng, func() {
		srv.Close()
		ln.Close()
		<-done
	}
}

// TestConcurrentClientsWithMetrics hammers one obs-enabled server from
// several sessions mixing exec, stats and metrics ops; run under -race it
// checks the registry's lock-free counters and the per-connection state.
func TestConcurrentClientsWithMetrics(t *testing.T) {
	addr, eng, shutdown := startObsServer(t, "")
	defer shutdown()
	if _, err := eng.ExecScript(setupScript, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Cities", strings.NewReader("p,US\nq,US\nr,CA\n")); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Roads", strings.NewReader("p,q\nq,r\n")); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			cl, err := client.Dial(addr, "")
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for j := 0; j < 15; j++ {
				resp, err := cl.Exec(`select B.id from graph City (id = 'p') --road--> def B: City ( )`, nil)
				if err != nil {
					errs <- err
					return
				}
				if len(resp.Results[0].Rows) != 1 {
					errs <- err
					return
				}
				if _, err := cl.Stats(); err != nil {
					errs <- err
					return
				}
				if _, err := cl.Metrics(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	text, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"graql_statements_total", "graql_queries_total", "graql_statement_latency_seconds_bucket"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if c := eng.Opts.Obs.Counter("graql_queries_total", ""); c.Value() < clients*15 {
		t.Errorf("query counter = %d, want >= %d", c.Value(), clients*15)
	}
}

// TestErrorCodes checks the structured error classification on the wire.
func TestErrorCodes(t *testing.T) {
	addr, _, shutdown := startObsServer(t, "sekrit")
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := json.NewEncoder(conn), json.NewDecoder(conn)
	roundTrip := func(req server.Request) server.Response {
		t.Helper()
		var resp server.Response
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := roundTrip(server.Request{Op: "ping", Auth: "wrong"}); resp.OK || resp.Code != server.CodeAuth {
		t.Errorf("wrong token: ok=%v code=%q, want code %q", resp.OK, resp.Code, server.CodeAuth)
	}
	if resp := roundTrip(server.Request{Op: "frobnicate", Auth: "sekrit"}); resp.OK || resp.Code != server.CodeBadRequest {
		t.Errorf("unknown op: ok=%v code=%q, want code %q", resp.OK, resp.Code, server.CodeBadRequest)
	}
	if resp := roundTrip(server.Request{Op: "exec", Auth: "sekrit", Script: "select from from"}); resp.OK || resp.Code != server.CodeParse {
		t.Errorf("parse error: ok=%v code=%q, want code %q", resp.OK, resp.Code, server.CodeParse)
	}
	if resp := roundTrip(server.Request{Op: "exec", Auth: "sekrit", Script: "select x from table Missing"}); resp.OK || resp.Code != server.CodeExec {
		t.Errorf("exec error: ok=%v code=%q, want code %q", resp.OK, resp.Code, server.CodeExec)
	}
	resp := roundTrip(server.Request{Op: "ping", Auth: "sekrit"})
	if !resp.OK || resp.Code != "" {
		t.Errorf("ping: ok=%v code=%q, want ok with empty code", resp.OK, resp.Code)
	}
	if resp.ElapsedUs < 0 {
		t.Errorf("ElapsedUs = %d, want >= 0", resp.ElapsedUs)
	}
}
