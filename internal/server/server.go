// Package server implements the GEMS front-end server (paper §III): it
// centralises access to the database, authenticates clients, holds the
// metadata catalog, statically checks incoming GraQL scripts, compiles
// them to the binary IR, and executes them on the backend engine.
//
// The wire protocol is newline-delimited JSON frames over TCP: one
// Request per frame, one Response per frame. Clients range "from a simple
// command-line interface to web-based front-ends" (§III); cmd/gems-client
// is the former.
package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"graql/internal/ast"
	"graql/internal/cluster"
	"graql/internal/diag"
	"graql/internal/exec"
	"graql/internal/ir"
	"graql/internal/obs"
	"graql/internal/parser"
	"graql/internal/value"
)

// Param is a typed query parameter on the wire.
type Param struct {
	Type  string `json:"type"` // integer | float | varchar | date | boolean
	Value string `json:"value"`
}

// Request is one client frame.
type Request struct {
	// Op selects the operation: "exec" (run script), "check" (static
	// analysis only), "compile" (script → IR), "execir" (run IR bytes),
	// "prepare" (compile Script — or IR — into a reusable server-side
	// statement handle; the assigned id comes back in Response.Stmt),
	// "execute" (run the prepared handle named by Stmt, binding Params),
	// "deallocate" (drop the prepared handle named by Stmt),
	// "stats" (catalog snapshot), "metrics" (Prometheus text exposition
	// of the engine's observability registry), "trace" (retained trace
	// trees), "statements" (per-statement-shape statistics), "ps"
	// (in-flight query table), "cancelq" (cancel the in-flight query with
	// id QueryID), "workers" (distributed worker health), "ping".
	Op string `json:"op"`
	// Auth must match the server token when one is configured.
	Auth   string           `json:"auth,omitempty"`
	Script string           `json:"script,omitempty"`
	IR     string           `json:"ir,omitempty"` // base64
	Params map[string]Param `json:"params,omitempty"`
	// Trace optionally propagates the client's trace context: either a
	// W3C traceparent value ("00-<32 hex>-<16 hex>-01") or a bare 32-hex
	// trace id. When the server retains traces, the request's spans join
	// that trace (under the client's span, if one was given); otherwise a
	// fresh trace id is assigned. Echoed back in Response.TraceID.
	Trace string `json:"traceId,omitempty"`
	// TimeoutMs optionally bounds this request's execution in
	// milliseconds. It overrides the server's default query timeout and
	// is clamped to the server's maximum; zero means "use the default".
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// QueryID targets an in-flight query (op "cancelq").
	QueryID uint64 `json:"queryId,omitempty"`
	// Stmt names a prepared statement handle (ops "execute" and
	// "deallocate"); ids are assigned by "prepare".
	Stmt string `json:"stmt,omitempty"`
}

// StmtResult is one statement's outcome on the wire.
type StmtResult struct {
	Message          string     `json:"message,omitempty"`
	Columns          []string   `json:"columns,omitempty"`
	Rows             [][]string `json:"rows,omitempty"`
	SubgraphName     string     `json:"subgraphName,omitempty"`
	SubgraphVertices int        `json:"subgraphVertices,omitempty"`
	SubgraphEdges    int        `json:"subgraphEdges,omitempty"`
}

// CatalogEntry is one catalog object in a stats response.
type CatalogEntry struct {
	Kind         string  `json:"kind"`
	Name         string  `json:"name"`
	Count        int     `json:"count"`
	AvgOutDegree float64 `json:"avgOutDegree,omitempty"`
	AvgInDegree  float64 `json:"avgInDegree,omitempty"`
}

// Error codes classifying a failed request (Response.Code). The error
// string stays populated for older clients.
const (
	CodeAuth       = "auth"        // authentication failed
	CodeParse      = "parse"       // lexing, parsing or static analysis
	CodeBadRequest = "bad_request" // malformed parameters, IR or op
	CodeExec       = "exec"        // statement execution failed
	CodeCanceled   = "canceled"    // execution aborted by cancellation (e.g. shutdown)
	CodeDeadline   = "deadline"    // execution aborted by the query deadline
	CodeOverloaded = "overloaded"  // rejected by admission control; retry after backoff
	CodePartial    = "partial"     // distributed execution failed on one or more workers
)

// Response is one server frame.
type Response struct {
	OK bool `json:"ok"`
	// Error is the human-readable failure; Code classifies it (auth |
	// parse | bad_request | exec | canceled | deadline | overloaded)
	// for programmatic handling.
	Error   string         `json:"error,omitempty"`
	Code    string         `json:"code,omitempty"`
	Results []StmtResult   `json:"results,omitempty"`
	IR      string         `json:"ir,omitempty"` // base64, for "compile"
	Catalog []CatalogEntry `json:"catalog,omitempty"`
	// Metrics carries the Prometheus text exposition for op "metrics".
	Metrics string `json:"metrics,omitempty"`
	// ElapsedUs is the server-side handling time of this request in
	// microseconds (stamped on every response).
	ElapsedUs int64 `json:"elapsedUs"`
	// TraceID echoes the request's trace id when the request was traced.
	TraceID string `json:"traceId,omitempty"`
	// Stmt is the id assigned to a prepared statement handle (op
	// "prepare"); pass it back as Request.Stmt to execute or deallocate.
	Stmt string `json:"stmt,omitempty"`
	// Traces carries the retained trace trees for op "trace".
	Traces []obs.TraceTree `json:"traces,omitempty"`
	// Statements carries the per-statement-shape statistics for op
	// "statements".
	Statements []obs.StmtStat `json:"statements,omitempty"`
	// Queries carries the in-flight query table for op "ps".
	Queries []obs.QueryInfo `json:"queries,omitempty"`
	// Workers carries the per-worker health of the distributed cluster
	// for op "workers" (empty when the server runs without one).
	Workers []cluster.WorkerStatus `json:"workers,omitempty"`
	// Diagnostics carries every static-analysis finding for op "check":
	// errors and lint warnings, sorted by source position. Present (with
	// OK=false and a summary Error) when the script has errors, and with
	// OK=true when only warnings remain.
	Diagnostics diag.List `json:"diagnostics,omitempty"`
}

func fail(code, format string, args ...any) *Response {
	return &Response{Code: code, Error: fmt.Sprintf(format, args...)}
}

// Limits configures per-query deadlines and admission control. The zero
// value imposes no limits.
type Limits struct {
	// DefaultTimeout bounds each request's execution when the client
	// sends no timeoutMs. Zero means no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps the effective deadline, clamping client-supplied
	// timeoutMs values (and the default). Zero means no cap.
	MaxTimeout time.Duration
}

// TimeoutFor resolves the effective execution budget for one request:
// the client's timeoutMs when given, otherwise the default, clamped to
// the maximum. Zero means "no deadline".
func (l Limits) TimeoutFor(timeoutMs int) time.Duration {
	d := l.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if l.MaxTimeout > 0 && (d == 0 || d > l.MaxTimeout) {
		d = l.MaxTimeout
	}
	return d
}

// Server is a GEMS front-end bound to one engine.
type Server struct {
	eng   *exec.Engine
	token string

	// IdleTimeout bounds how long a connection may sit idle between
	// requests; WriteTimeout bounds the write of one response frame.
	// Zero disables the respective deadline. Set before Serve.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration

	// Limits configures per-query deadlines. Set before Serve.
	Limits Limits

	// Gate, when non-nil, admission-controls the execution ops ("exec",
	// "execir", "execute"); overflow requests fail with CodeOverloaded.
	// Share one gate between the TCP and HTTP front-ends to bound the
	// process globally. Set before Serve.
	Gate *Gate

	// Prepared is the registry of prepared statement handles. New
	// installs a default-capacity registry; replace it (before Serve)
	// with a shared instance so the TCP and HTTP front-ends resolve the
	// same handle ids.
	Prepared *PreparedSet

	// Log, when non-nil, receives one structured line per request
	// (trace_id, op, code, elapsed_us) plus connection lifecycle events
	// at debug level. Set before Serve.
	Log *slog.Logger

	// Dist, when non-nil, is the coordinator's transport to the
	// distributed worker processes; op "workers" probes it for per-worker
	// health. Set before Serve (the engine routes queries through it via
	// Options.Dist).
	Dist *cluster.TCPTransport

	// baseCtx parents every request context; Shutdown cancels it to
	// abort in-flight queries after the drain window.
	baseCtx   context.Context
	cancelAll context.CancelFunc
	active    atomic.Int64 // requests currently being handled

	mu        sync.Mutex
	closed    bool
	conns     map[net.Conn]bool
	listeners map[net.Listener]bool
}

// New returns a server over the engine. A non-empty token enables
// authentication: every request must carry it.
func New(eng *exec.Engine, token string) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		eng: eng, token: token,
		conns:     make(map[net.Conn]bool),
		listeners: make(map[net.Listener]bool),
		baseCtx:   ctx, cancelAll: cancel,
		Prepared: NewPreparedSet(0),
	}
}

// requestCtx derives one request's context from the server's base
// context and the resolved timeout.
func (s *Server) requestCtx(timeoutMs int) (context.Context, context.CancelFunc) {
	if d := s.Limits.TimeoutFor(timeoutMs); d > 0 {
		return context.WithTimeout(s.baseCtx, d)
	}
	return context.WithCancel(s.baseCtx)
}

// Serve accepts connections on ln until Close (or a permanent accept
// error) and serves each connection on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.listeners[ln] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close terminates all active connections and cancels in-flight
// queries immediately. The listener passed to Serve must be closed by
// the caller (Serve then returns nil). For a graceful stop use Shutdown.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cancelAll()
}

// Shutdown stops the server gracefully: it closes the listeners (no new
// connections), waits up to drain for in-flight requests to finish,
// cancels whatever is still running (those requests fail with
// CodeCanceled), and finally closes the remaining connections. It
// returns true when everything drained within the window.
func (s *Server) Shutdown(drain time.Duration) bool {
	s.mu.Lock()
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	s.mu.Unlock()
	// Queries still running during the drain window show as "draining" in
	// the live query table.
	s.eng.Opts.Obs.MarkDraining()

	drained := s.awaitIdle(drain)
	s.cancelAll()
	if !drained {
		// Give canceled requests a moment to write their error frames
		// before the connections go away.
		s.awaitIdle(time.Second)
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if s.Log != nil {
		s.Log.Info("server shutdown", "drained", drained)
	}
	return drained
}

// awaitIdle polls until no request is being handled or the window
// elapses.
func (s *Server) awaitIdle(window time.Duration) bool {
	deadline := time.Now().Add(window)
	for s.active.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
	return true
}

func (s *Server) serveConn(conn net.Conn) {
	if s.Log != nil {
		s.Log.Debug("connection accepted", "remote", conn.RemoteAddr().String())
	}
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if s.Log != nil {
			s.Log.Debug("connection closed", "remote", conn.RemoteAddr().String())
		}
	}()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		if s.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF, timeout or broken frame: drop the session
		}
		start := time.Now()
		s.active.Add(1)
		ctx, cancel := s.requestCtx(req.TimeoutMs)
		resp := s.handle(ctx, &req)
		cancel()
		resp.ElapsedUs = time.Since(start).Microseconds()
		s.logRequest(&req, resp)
		if s.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		// The request counts as active until its response frame is on
		// the wire, so a graceful drain never closes the connection
		// between handling and writing.
		err := enc.Encode(resp)
		s.active.Add(-1)
		if err != nil {
			return
		}
	}
}

// logRequest emits the per-request structured line: every line carries
// the shared schema fields (trace_id, op, code, elapsed_us) so log
// streams join against the trace trees in /debug/traces.
func (s *Server) logRequest(req *Request, resp *Response) {
	if s.Log == nil {
		return
	}
	attrs := []any{
		"trace_id", resp.TraceID,
		"op", req.Op,
		"code", resp.Code,
		"elapsed_us", resp.ElapsedUs,
	}
	if resp.OK {
		s.Log.Info("request", attrs...)
	} else {
		s.Log.Warn("request failed", append(attrs, "error", resp.Error)...)
	}
}

func (s *Server) handle(ctx context.Context, req *Request) *Response {
	if s.token != "" && req.Auth != s.token {
		return fail(CodeAuth, "authentication failed")
	}
	if s.eng.Opts.Obs.TracingEnabled() && traceableOp(req.Op) {
		return s.handleTraced(ctx, req)
	}
	return s.dispatch(ctx, req, s.eng)
}

// traceableOp reports whether an op produces a trace tree. ping and the
// observability reads (metrics, trace) are excluded so polling them does
// not churn the trace ring.
func traceableOp(op string) bool {
	switch op {
	case "exec", "execir", "execute", "check", "compile", "stats":
		return true
	}
	return false
}

// handleTraced wraps one request in a trace: the root "server" span
// covers the whole handling, statement and operator spans of execution
// nest beneath it, and the completed trace enters the registry's ring.
// A client-supplied traceparent (Request.Trace) contributes the trace id
// and the remote parent span id, so the server's tree joins a trace the
// client originated.
func (s *Server) handleTraced(ctx context.Context, req *Request) *Response {
	tid, parent, _ := obs.ParseTraceParent(req.Trace)
	tr := obs.NewTrace(tid)
	root := tr.SpanUnder(parent, "server", req.Op)
	resp := s.dispatch(ctx, req, s.eng.WithTrace(tr, root))
	root.End()
	resp.TraceID = tr.ID().String()
	s.eng.Opts.Obs.ObserveTrace(tr)
	return resp
}

// dispatch routes one request to its handler, executing on eng (the
// base engine, or a traced fork of it).
func (s *Server) dispatch(ctx context.Context, req *Request, eng *exec.Engine) *Response {
	switch req.Op {
	case "ping":
		return &Response{OK: true}
	case "exec", "execir", "execute":
		// Only the execution ops pass admission control: the metadata and
		// observability reads are cheap and must stay responsive when the
		// engine is saturated. While queued the request is visible in the
		// live query table (state "queued") and cancelable by id; the wait
		// rides the context into per-statement accounting.
		qctx, qcancel := context.WithCancel(ctx)
		defer qcancel()
		fp, text := s.eng.Opts.Obs.FingerprintCached(req.Script)
		switch {
		case req.Op == "execir":
			fp, text = obs.Fingerprint("(compiled ir)")
		case req.Op == "execute":
			if p := s.Prepared.Get(req.Stmt); p != nil {
				fp, text = s.eng.Opts.Obs.FingerprintCached(p.Text())
			} else {
				fp, text = obs.Fingerprint("(unknown prepared statement)")
			}
		}
		lq := s.eng.Opts.Obs.StartQueuedQuery(fp, text, qcancel)
		waitStart := time.Now()
		err := s.Gate.Acquire(qctx)
		lq.Finish()
		if err != nil {
			return admissionFailure(err)
		}
		defer s.Gate.Release()
		ctx = exec.WithQueueWait(qctx, time.Since(waitStart))
		switch req.Op {
		case "exec":
			return s.execScript(ctx, req, eng)
		case "execute":
			return s.execPrepared(ctx, req, eng)
		}
		return s.execIR(ctx, req, eng)
	case "prepare":
		return s.prepare(req)
	case "deallocate":
		if req.Stmt == "" {
			return fail(CodeBadRequest, "deallocate requires stmt")
		}
		if !s.Prepared.Remove(req.Stmt) {
			return fail(CodeBadRequest, "unknown prepared statement %q", req.Stmt)
		}
		return &Response{OK: true, Results: []StmtResult{{Message: fmt.Sprintf("deallocated %s", req.Stmt)}}}
	case "check":
		return s.checkScript(req.Script)
	case "compile":
		return s.compile(req)
	case "stats":
		return s.stats()
	case "metrics":
		return s.metrics()
	case "trace":
		return &Response{OK: true, Traces: s.eng.Opts.Obs.Traces()}
	case "statements":
		return &Response{OK: true, Statements: s.eng.Opts.Obs.Statements()}
	case "ps":
		return &Response{OK: true, Queries: s.eng.Opts.Obs.LiveQueries()}
	case "workers":
		if s.Dist == nil {
			return &Response{OK: true, Results: []StmtResult{{Message: "not running distributed"}}}
		}
		return &Response{OK: true, Workers: s.Dist.Probe(2 * time.Second)}
	case "cancelq":
		if req.QueryID == 0 {
			return fail(CodeBadRequest, "cancelq requires queryId")
		}
		if !s.eng.Opts.Obs.CancelQuery(req.QueryID) {
			return fail(CodeBadRequest, "no such query id %d", req.QueryID)
		}
		return &Response{OK: true, Results: []StmtResult{{Message: fmt.Sprintf("canceled query %d", req.QueryID)}}}
	}
	return fail(CodeBadRequest, "unknown op %q", req.Op)
}

// admissionFailure maps a Gate.Acquire error to its wire form: a full
// queue is "overloaded"; a deadline that expired while queued reports
// the same codes execution would.
func admissionFailure(err error) *Response {
	switch {
	case errors.Is(err, ErrOverloaded):
		return fail(CodeOverloaded, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		return fail(CodeDeadline, "query deadline exceeded while queued for admission")
	default:
		return fail(CodeCanceled, "query canceled while queued for admission")
	}
}

// metrics renders the engine's observability registry in the Prometheus
// text format; without a registry the exposition is empty but the call
// still succeeds.
func (s *Server) metrics() *Response {
	return &Response{OK: true, Metrics: s.eng.Opts.Obs.PrometheusText()}
}

func (s *Server) execScript(ctx context.Context, req *Request, eng *exec.Engine) *Response {
	params, err := decodeParams(req.Params)
	if err != nil {
		return fail(CodeBadRequest, "%v", err)
	}
	// Front-end path per §III: parse → compile to IR → ship the IR to
	// the backend → decode and execute. Running the codec on every
	// script keeps the IR honest (round-trip exercised on real traffic).
	script, err := parser.Parse(req.Script)
	if err != nil {
		return fail(CodeParse, "%v", err)
	}
	blob, err := ir.Encode(script)
	if err != nil {
		return fail(CodeExec, "%v", err)
	}
	decoded, err := ir.Decode(blob)
	if err != nil {
		return fail(CodeExec, "%v", err)
	}
	return run(ctx, eng, decoded, params)
}

// prepare compiles a script (or already-compiled IR) into a server-side
// prepared statement handle: parse → binary IR → fingerprints, plus
// eager semantic analysis and plan-cache warming for read-only scripts.
// The assigned handle id comes back in Response.Stmt.
func (s *Server) prepare(req *Request) *Response {
	var (
		p   *exec.Prepared
		err error
	)
	switch {
	case req.Script != "":
		p, err = s.eng.Prepare(req.Script)
	case req.IR != "":
		var blob []byte
		if blob, err = base64.StdEncoding.DecodeString(req.IR); err != nil {
			return fail(CodeBadRequest, "bad IR base64: %v", err)
		}
		p, err = s.eng.PrepareIR(blob)
	default:
		return fail(CodeBadRequest, "prepare requires script or ir")
	}
	if err != nil {
		return fail(CodeParse, "%v", err)
	}
	id := s.Prepared.Add(p)
	return &Response{
		OK: true, Stmt: id,
		Results: []StmtResult{{Message: fmt.Sprintf("prepared %d statement(s) as %s", p.NumStmts(), id)}},
	}
}

// execPrepared runs a prepared handle, binding the request's parameters.
func (s *Server) execPrepared(ctx context.Context, req *Request, eng *exec.Engine) *Response {
	p := s.Prepared.Get(req.Stmt)
	if p == nil {
		return fail(CodeBadRequest, "unknown prepared statement %q", req.Stmt)
	}
	params, err := decodeParams(req.Params)
	if err != nil {
		return fail(CodeBadRequest, "%v", err)
	}
	results, err := eng.ExecPreparedContext(ctx, p, params)
	if err != nil {
		return fail(ErrorCode(err), "%v", err)
	}
	resp := &Response{OK: true}
	for _, r := range results {
		resp.Results = append(resp.Results, EncodeResult(r))
	}
	return resp
}

// checkScript statically vets a script, returning every diagnostic —
// errors and lint warnings — so clients can render positioned findings.
// Error keeps the summary form for older clients.
func (s *Server) checkScript(src string) *Response {
	if src == "" {
		return fail(CodeParse, "empty script")
	}
	diags := s.eng.VetScript(src)
	resp := &Response{Diagnostics: diags}
	if err := diags.Err(); err != nil {
		resp.Code = CodeParse
		resp.Error = err.Error()
		return resp
	}
	resp.OK = true
	resp.Results = []StmtResult{{Message: "script is statically valid"}}
	return resp
}

func (s *Server) compile(req *Request) *Response {
	script, err := parser.Parse(req.Script)
	if err != nil {
		return fail(CodeParse, "%v", err)
	}
	blob, err := ir.Encode(script)
	if err != nil {
		return fail(CodeExec, "%v", err)
	}
	return &Response{OK: true, IR: base64.StdEncoding.EncodeToString(blob)}
}

func (s *Server) execIR(ctx context.Context, req *Request, eng *exec.Engine) *Response {
	params, err := decodeParams(req.Params)
	if err != nil {
		return fail(CodeBadRequest, "%v", err)
	}
	blob, err := base64.StdEncoding.DecodeString(req.IR)
	if err != nil {
		return fail(CodeBadRequest, "bad IR base64: %v", err)
	}
	script, err := ir.Decode(blob)
	if err != nil {
		return fail(CodeBadRequest, "%v", err)
	}
	return run(ctx, eng, script, params)
}

// ErrorCode classifies an execution error for the wire: context aborts
// map to their structured codes, worker failures on the distributed
// path map to "partial", everything else is a plain exec failure.
// Shared with the HTTP front-end.
func ErrorCode(err error) string {
	switch {
	case errors.Is(err, exec.ErrDeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, exec.ErrCanceled):
		return CodeCanceled
	case errors.Is(err, exec.ErrPartial):
		return CodePartial
	default:
		return CodeExec
	}
}

func run(ctx context.Context, eng *exec.Engine, script *ast.Script, params map[string]value.Value) *Response {
	resp := &Response{}
	for i, st := range script.Stmts {
		r, err := eng.ExecStmtContext(ctx, st, params)
		if err != nil {
			resp.Code = ErrorCode(err)
			resp.Error = fmt.Sprintf("statement %d: %v", i+1, err)
			return resp
		}
		resp.Results = append(resp.Results, EncodeResult(r))
	}
	resp.OK = true
	return resp
}

func (s *Server) stats() *Response {
	s.eng.Cat.RLock()
	defer s.eng.Cat.RUnlock()
	resp := &Response{OK: true}
	for _, st := range s.eng.Cat.Stats() {
		resp.Catalog = append(resp.Catalog, CatalogEntry{
			Kind: st.Kind, Name: st.Name, Count: st.Count,
			AvgOutDegree: st.AvgOutDegree, AvgInDegree: st.AvgInDegree,
		})
	}
	return resp
}

// EncodeResult converts an engine result to its wire form (shared with
// the web front-end).
func EncodeResult(r exec.Result) StmtResult {
	out := StmtResult{Message: r.Message}
	switch r.Kind {
	case exec.ResultTable:
		t := r.Table
		out.Columns = t.Schema().Names()
		for row := uint32(0); row < uint32(t.NumRows()); row++ {
			rec := make([]string, t.NumCols())
			for c := 0; c < t.NumCols(); c++ {
				v := t.Value(row, c)
				if v.IsNull() {
					rec[c] = ""
				} else {
					rec[c] = v.String()
				}
			}
			out.Rows = append(out.Rows, rec)
		}
	case exec.ResultSubgraph:
		out.SubgraphName = r.Subgraph.Name
		out.SubgraphVertices = r.Subgraph.NumVertices()
		out.SubgraphEdges = r.Subgraph.NumEdges()
	}
	return out
}

func decodeParams(raw map[string]Param) (map[string]value.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make(map[string]value.Value, len(raw))
	for name, p := range raw {
		t, err := value.ParseType(p.Type)
		if err != nil {
			return nil, fmt.Errorf("parameter %s: %v", name, err)
		}
		v, err := value.Parse(p.Value, t)
		if err != nil {
			return nil, fmt.Errorf("parameter %s: %v", name, err)
		}
		out[name] = v
	}
	return out, nil
}
