// Package server implements the GEMS front-end server (paper §III): it
// centralises access to the database, authenticates clients, holds the
// metadata catalog, statically checks incoming GraQL scripts, compiles
// them to the binary IR, and executes them on the backend engine.
//
// The wire protocol is newline-delimited JSON frames over TCP: one
// Request per frame, one Response per frame. Clients range "from a simple
// command-line interface to web-based front-ends" (§III); cmd/gems-client
// is the former.
package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"graql/internal/ast"
	"graql/internal/exec"
	"graql/internal/ir"
	"graql/internal/parser"
	"graql/internal/value"
)

// Param is a typed query parameter on the wire.
type Param struct {
	Type  string `json:"type"` // integer | float | varchar | date | boolean
	Value string `json:"value"`
}

// Request is one client frame.
type Request struct {
	// Op selects the operation: "exec" (run script), "check" (static
	// analysis only), "compile" (script → IR), "execir" (run IR bytes),
	// "stats" (catalog snapshot), "metrics" (Prometheus text exposition
	// of the engine's observability registry), "ping".
	Op string `json:"op"`
	// Auth must match the server token when one is configured.
	Auth   string           `json:"auth,omitempty"`
	Script string           `json:"script,omitempty"`
	IR     string           `json:"ir,omitempty"` // base64
	Params map[string]Param `json:"params,omitempty"`
}

// StmtResult is one statement's outcome on the wire.
type StmtResult struct {
	Message          string     `json:"message,omitempty"`
	Columns          []string   `json:"columns,omitempty"`
	Rows             [][]string `json:"rows,omitempty"`
	SubgraphName     string     `json:"subgraphName,omitempty"`
	SubgraphVertices int        `json:"subgraphVertices,omitempty"`
	SubgraphEdges    int        `json:"subgraphEdges,omitempty"`
}

// CatalogEntry is one catalog object in a stats response.
type CatalogEntry struct {
	Kind         string  `json:"kind"`
	Name         string  `json:"name"`
	Count        int     `json:"count"`
	AvgOutDegree float64 `json:"avgOutDegree,omitempty"`
	AvgInDegree  float64 `json:"avgInDegree,omitempty"`
}

// Error codes classifying a failed request (Response.Code). The error
// string stays populated for older clients.
const (
	CodeAuth       = "auth"        // authentication failed
	CodeParse      = "parse"       // lexing, parsing or static analysis
	CodeBadRequest = "bad_request" // malformed parameters, IR or op
	CodeExec       = "exec"        // statement execution failed
)

// Response is one server frame.
type Response struct {
	OK bool `json:"ok"`
	// Error is the human-readable failure; Code classifies it (auth |
	// parse | bad_request | exec) for programmatic handling.
	Error   string         `json:"error,omitempty"`
	Code    string         `json:"code,omitempty"`
	Results []StmtResult   `json:"results,omitempty"`
	IR      string         `json:"ir,omitempty"` // base64, for "compile"
	Catalog []CatalogEntry `json:"catalog,omitempty"`
	// Metrics carries the Prometheus text exposition for op "metrics".
	Metrics string `json:"metrics,omitempty"`
	// ElapsedUs is the server-side handling time of this request in
	// microseconds (stamped on every response).
	ElapsedUs int64 `json:"elapsedUs"`
}

func fail(code, format string, args ...any) *Response {
	return &Response{Code: code, Error: fmt.Sprintf(format, args...)}
}

// Server is a GEMS front-end bound to one engine.
type Server struct {
	eng   *exec.Engine
	token string

	// IdleTimeout bounds how long a connection may sit idle between
	// requests; WriteTimeout bounds the write of one response frame.
	// Zero disables the respective deadline. Set before Serve.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
}

// New returns a server over the engine. A non-empty token enables
// authentication: every request must carry it.
func New(eng *exec.Engine, token string) *Server {
	return &Server{eng: eng, token: token, conns: make(map[net.Conn]bool)}
}

// Serve accepts connections on ln until Close (or a permanent accept
// error) and serves each connection on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close terminates all active connections. The listener passed to Serve
// must be closed by the caller (Serve then returns nil).
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		if s.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF, timeout or broken frame: drop the session
		}
		start := time.Now()
		resp := s.handle(&req)
		resp.ElapsedUs = time.Since(start).Microseconds()
		if s.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *Request) *Response {
	if s.token != "" && req.Auth != s.token {
		return fail(CodeAuth, "authentication failed")
	}
	switch req.Op {
	case "ping":
		return &Response{OK: true}
	case "exec":
		return s.execScript(req)
	case "check":
		if err := s.checkScript(req.Script); err != nil {
			return fail(CodeParse, "%v", err)
		}
		return &Response{OK: true, Results: []StmtResult{{Message: "script is statically valid"}}}
	case "compile":
		return s.compile(req)
	case "execir":
		return s.execIR(req)
	case "stats":
		return s.stats()
	case "metrics":
		return s.metrics()
	}
	return fail(CodeBadRequest, "unknown op %q", req.Op)
}

// metrics renders the engine's observability registry in the Prometheus
// text format; without a registry the exposition is empty but the call
// still succeeds.
func (s *Server) metrics() *Response {
	return &Response{OK: true, Metrics: s.eng.Opts.Obs.PrometheusText()}
}

func (s *Server) execScript(req *Request) *Response {
	params, err := decodeParams(req.Params)
	if err != nil {
		return fail(CodeBadRequest, "%v", err)
	}
	// Front-end path per §III: parse → compile to IR → ship the IR to
	// the backend → decode and execute. Running the codec on every
	// script keeps the IR honest (round-trip exercised on real traffic).
	script, err := parser.Parse(req.Script)
	if err != nil {
		return fail(CodeParse, "%v", err)
	}
	blob, err := ir.Encode(script)
	if err != nil {
		return fail(CodeExec, "%v", err)
	}
	decoded, err := ir.Decode(blob)
	if err != nil {
		return fail(CodeExec, "%v", err)
	}
	return s.run(decoded, params)
}

func (s *Server) checkScript(src string) error {
	if src == "" {
		return errors.New("empty script")
	}
	return exec.CheckScript(src)
}

func (s *Server) compile(req *Request) *Response {
	script, err := parser.Parse(req.Script)
	if err != nil {
		return fail(CodeParse, "%v", err)
	}
	blob, err := ir.Encode(script)
	if err != nil {
		return fail(CodeExec, "%v", err)
	}
	return &Response{OK: true, IR: base64.StdEncoding.EncodeToString(blob)}
}

func (s *Server) execIR(req *Request) *Response {
	params, err := decodeParams(req.Params)
	if err != nil {
		return fail(CodeBadRequest, "%v", err)
	}
	blob, err := base64.StdEncoding.DecodeString(req.IR)
	if err != nil {
		return fail(CodeBadRequest, "bad IR base64: %v", err)
	}
	script, err := ir.Decode(blob)
	if err != nil {
		return fail(CodeBadRequest, "%v", err)
	}
	return s.run(script, params)
}

func (s *Server) run(script *ast.Script, params map[string]value.Value) *Response {
	resp := &Response{}
	for i, st := range script.Stmts {
		r, err := s.eng.ExecStmt(st, params)
		if err != nil {
			resp.Code = CodeExec
			resp.Error = fmt.Sprintf("statement %d: %v", i+1, err)
			return resp
		}
		resp.Results = append(resp.Results, EncodeResult(r))
	}
	resp.OK = true
	return resp
}

func (s *Server) stats() *Response {
	s.eng.Cat.RLock()
	defer s.eng.Cat.RUnlock()
	resp := &Response{OK: true}
	for _, st := range s.eng.Cat.Stats() {
		resp.Catalog = append(resp.Catalog, CatalogEntry{
			Kind: st.Kind, Name: st.Name, Count: st.Count,
			AvgOutDegree: st.AvgOutDegree, AvgInDegree: st.AvgInDegree,
		})
	}
	return resp
}

// EncodeResult converts an engine result to its wire form (shared with
// the web front-end).
func EncodeResult(r exec.Result) StmtResult {
	out := StmtResult{Message: r.Message}
	switch r.Kind {
	case exec.ResultTable:
		t := r.Table
		out.Columns = t.Schema().Names()
		for row := uint32(0); row < uint32(t.NumRows()); row++ {
			rec := make([]string, t.NumCols())
			for c := 0; c < t.NumCols(); c++ {
				v := t.Value(row, c)
				if v.IsNull() {
					rec[c] = ""
				} else {
					rec[c] = v.String()
				}
			}
			out.Rows = append(out.Rows, rec)
		}
	case exec.ResultSubgraph:
		out.SubgraphName = r.Subgraph.Name
		out.SubgraphVertices = r.Subgraph.NumVertices()
		out.SubgraphEdges = r.Subgraph.NumEdges()
	}
	return out
}

func decodeParams(raw map[string]Param) (map[string]value.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make(map[string]value.Value, len(raw))
	for name, p := range raw {
		t, err := value.ParseType(p.Type)
		if err != nil {
			return nil, fmt.Errorf("parameter %s: %v", name, err)
		}
		v, err := value.Parse(p.Value, t)
		if err != nil {
			return nil, fmt.Errorf("parameter %s: %v", name, err)
		}
		out[name] = v
	}
	return out, nil
}
