package server_test

import (
	"net"
	"strings"
	"sync"
	"testing"

	"graql/internal/client"
	"graql/internal/exec"
	"graql/internal/obs"
	"graql/internal/server"
)

// startTracedServer is startObsServer with trace retention enabled and
// the road chain p→q→r loaded.
func startTracedServer(t *testing.T, ring int) (addr string, eng *exec.Engine, shutdown func()) {
	t.Helper()
	opts := exec.DefaultOptions()
	opts.Obs = obs.New()
	opts.Obs.EnableTracing(ring)
	eng = exec.New(opts)
	if _, err := eng.ExecScript(setupScript, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Cities", strings.NewReader("p,US\nq,US\nr,CA\n")); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Roads", strings.NewReader("p,q\nq,r\n")); err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), eng, func() {
		srv.Close()
		ln.Close()
		<-done
	}
}

// countSpans walks a span forest counting nodes and verifying parent
// links: every child's ParentID must equal its parent's SpanID.
func countSpans(t *testing.T, nodes []*obs.SpanNode, parentID string) int {
	t.Helper()
	n := 0
	for _, node := range nodes {
		if parentID != "" && node.ParentID != parentID {
			t.Errorf("span %s (%s) has parent %s, want %s", node.SpanID, node.Action, node.ParentID, parentID)
		}
		n += 1 + countSpans(t, node.Children, node.SpanID)
	}
	return n
}

// TestClientServerSpanTree checks the full propagation path: the client
// originates a traceparent, the server builds one connected span tree
// under it, and the tree reaches the client through the "trace" op.
func TestClientServerSpanTree(t *testing.T) {
	addr, _, shutdown := startTracedServer(t, 8)
	defer shutdown()

	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.EnableTracing(true)

	resp, err := cl.Exec(`
select * from graph
def a: City ( ) --road--> def b: City ( ) --road--> def c: City ( )
into subgraph SG`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == "" {
		t.Fatal("Response.TraceID empty on a traced session")
	}

	trees, err := cl.Traces()
	if err != nil {
		t.Fatal(err)
	}
	var tree *obs.TraceTree
	for i := range trees {
		if trees[i].TraceID == resp.TraceID {
			tree = &trees[i]
		}
	}
	if tree == nil {
		t.Fatalf("trace %s not in the server ring (%d retained)", resp.TraceID, len(trees))
	}

	// One connected tree rooted at the server op: the root's parent is the
	// client's remote span, so it renders as the sole root.
	if len(tree.Roots) != 1 {
		t.Fatalf("trace has %d roots, want 1", len(tree.Roots))
	}
	root := tree.Roots[0]
	if root.Action != "server" || root.Detail != "exec" {
		t.Fatalf("root span = %s/%s, want server/exec", root.Action, root.Detail)
	}
	if root.ParentID == "" {
		t.Fatal("server root should carry the client's remote parent span id")
	}
	if got := countSpans(t, tree.Roots, ""); got != tree.SpanCount {
		t.Fatalf("connected spans = %d, SpanCount = %d", got, tree.SpanCount)
	}
	if len(root.Children) != 1 || root.Children[0].Action != "statement" {
		t.Fatalf("server root children: %+v", root.Children)
	}
	stmt := root.Children[0]
	if len(stmt.Children) == 0 {
		t.Fatal("statement span has no operator descendants")
	}

	// An untraced op must not disturb the ring.
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestServerAssignsTraceID: a request without a client traceparent still
// gets a server-assigned trace id.
func TestServerAssignsTraceID(t *testing.T) {
	addr, eng, shutdown := startTracedServer(t, 8)
	defer shutdown()
	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// No EnableTracing: the request carries no traceId field.
	resp, err := cl.Exec(`select a.id from graph def a: City (id = 'p')`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == "" {
		t.Fatal("server did not assign a trace id")
	}
	if n := eng.Opts.Obs.TraceCount(); n != 1 {
		t.Fatalf("TraceCount = %d, want 1", n)
	}
	// Server-originated root has no remote parent.
	trees := eng.Opts.Obs.Traces()
	if len(trees) != 1 || len(trees[0].Roots) != 1 || trees[0].Roots[0].ParentID != "" {
		t.Fatalf("unexpected forest: %+v", trees)
	}
}

// TestConcurrentTraceIDUniqueness hammers a traced server from several
// sessions; every response must carry a distinct trace id (and -race
// checks the trace machinery under concurrency).
func TestConcurrentTraceIDUniqueness(t *testing.T) {
	addr, _, shutdown := startTracedServer(t, 128)
	defer shutdown()

	const clients, perClient = 6, 10
	var mu sync.Mutex
	ids := make(map[string]bool)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := client.Dial(addr, "")
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			cl.EnableTracing(true)
			for j := 0; j < perClient; j++ {
				resp, err := cl.Exec(`select B.id from graph City (id = 'p') --road--> def B: City ( )`, nil)
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				if ids[resp.TraceID] {
					mu.Unlock()
					errs <- &net.AddrError{Err: "duplicate trace id " + resp.TraceID, Addr: addr}
					return
				}
				ids[resp.TraceID] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(ids) != clients*perClient {
		t.Fatalf("distinct trace ids = %d, want %d", len(ids), clients*perClient)
	}
}

// TestTraceOpWithoutTracing: the "trace" op answers an empty forest when
// the server retains no traces, rather than failing.
func TestTraceOpWithoutTracing(t *testing.T) {
	addr, _, shutdown := startObsServer(t, "")
	defer shutdown()
	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	trees, err := cl.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 0 {
		t.Fatalf("traces = %d, want 0", len(trees))
	}
}
