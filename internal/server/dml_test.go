package server_test

import (
	"reflect"
	"testing"

	"graql/internal/client"
	"graql/internal/server"
)

// TestDMLOverWire drives insert/update/delete through the TCP protocol:
// mutations run under the same gate/timeout machinery as queries, and
// derived views stay maintained for subsequent graph queries.
func TestDMLOverWire(t *testing.T) {
	addr, _, shutdown := startServer(t, "")
	defer shutdown()

	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec(setupScript, nil); err != nil {
		t.Fatalf("DDL over wire: %v", err)
	}
	resp, err := cl.Exec(`
insert into Cities values ('p', 'US'), ('q', 'US'), ('r', 'CA')
insert into Roads values ('p', 'q'), ('q', 'r')`, nil)
	if err != nil {
		t.Fatalf("insert over wire: %v", err)
	}
	if msg := resp.Results[0].Message; msg != "inserted 3 row(s) into Cities" {
		t.Errorf("insert message = %q", msg)
	}

	resp, err = cl.Exec(`update Cities set country = %cc% where id = 'r'`,
		map[string]server.Param{"cc": {Type: "varchar", Value: "XX"}})
	if err != nil {
		t.Fatalf("update over wire: %v", err)
	}
	if msg := resp.Results[0].Message; msg != "updated 1 row(s) in Cities" {
		t.Errorf("update message = %q", msg)
	}

	if _, err := cl.Exec(`delete from Roads where dst = 'r'`, nil); err != nil {
		t.Fatalf("delete over wire: %v", err)
	}

	// The edge view reflects the delete: only p --road--> q remains.
	resp, err = cl.Exec(`select B.id from graph City ( ) --road--> def B: City ( )`, nil)
	if err != nil {
		t.Fatalf("graph query after DML: %v", err)
	}
	if rows := resp.Results[0].Rows; !reflect.DeepEqual(rows, [][]string{{"q"}}) {
		t.Errorf("rows = %v, want [[q]]", rows)
	}
}
