package server_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"graql/internal/client"
	"graql/internal/cluster"
	"graql/internal/exec"
	"graql/internal/server"
)

// startDistServer boots a TCP server whose Dist transport is wired to a
// real 2-worker loopback cluster over the engine's graph.
func startDistServer(t *testing.T) (addr string, workers []*cluster.Worker, listeners []net.Listener, shutdown func()) {
	t.Helper()
	eng := exec.New(exec.DefaultOptions())
	if _, err := eng.ExecScript(setupScript, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Cities", strings.NewReader("p,US\nq,US\nr,CA\n")); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Roads", strings.NewReader("p,q\nq,r\n")); err != nil {
		t.Fatal(err)
	}

	g := eng.Cat.Graph()
	const parts = 2
	addrs := make([]string, parts)
	workers = make([]*cluster.Worker, parts)
	listeners = make([]net.Listener, parts)
	for p := 0; p < parts; p++ {
		wk, err := cluster.NewWorker(g, p, parts, cluster.Hash)
		if err != nil {
			t.Fatal(err)
		}
		wln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go wk.Serve(wln) //nolint:errcheck // torn down by Close below
		t.Cleanup(func() { wk.Close(); wln.Close() })
		addrs[p], workers[p], listeners[p] = wln.Addr().String(), wk, wln
	}
	tp, err := cluster.DialTCP(addrs, cluster.DialOptions{
		Strategy:    cluster.Hash,
		Fingerprint: cluster.GraphFingerprint(g),
		Timeout:     time.Second,
		DialWindow:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tp.Close)

	srv := server.New(eng, "")
	srv.Dist = tp
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), workers, listeners, func() {
		srv.Close()
		ln.Close()
		<-done
	}
}

// TestWorkersOpNotDistributed: the "workers" op on a single-node server
// answers cleanly with an empty status set rather than erroring.
func TestWorkersOpNotDistributed(t *testing.T) {
	addr, _, shutdown := startServer(t, "")
	defer shutdown()
	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ws, err := cl.Workers()
	if err != nil {
		t.Fatalf("workers op on a non-distributed server must succeed: %v", err)
	}
	if len(ws) != 0 {
		t.Fatalf("non-distributed server must report no workers, got %+v", ws)
	}
}

// TestWorkersOpProbesCluster: the "workers" op round-trips per-worker
// health over the wire, and reflects a killed worker as unhealthy.
func TestWorkersOpProbesCluster(t *testing.T) {
	addr, workers, listeners, shutdown := startDistServer(t)
	defer shutdown()
	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ws, err := cl.Workers()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("want 2 worker statuses, got %+v", ws)
	}
	for _, w := range ws {
		if !w.Healthy || w.Addr == "" {
			t.Fatalf("all workers must probe healthy with addresses: %+v", ws)
		}
	}

	workers[0].Close()
	listeners[0].Close()

	ws, err = cl.Workers()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].Healthy || ws[0].Err == "" {
		t.Fatalf("killed worker 0 must probe unhealthy with an error, got %+v", ws)
	}
	if !ws[1].Healthy {
		t.Fatalf("surviving worker must stay healthy, got %+v", ws)
	}
}
