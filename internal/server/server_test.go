package server_test

import (
	"net"
	"strings"
	"testing"

	"graql/internal/client"
	"graql/internal/exec"
	"graql/internal/server"
)

func startServer(t *testing.T, token string) (addr string, eng *exec.Engine, shutdown func()) {
	t.Helper()
	eng = exec.New(exec.DefaultOptions())
	srv := server.New(eng, token)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), eng, func() {
		srv.Close()
		ln.Close()
		<-done
	}
}

const setupScript = `
create table Cities(id varchar(8), country varchar(2))
create table Roads(src varchar(8), dst varchar(8))
create vertex City(id) from table Cities
create edge road with vertices (City as A, City as B)
from table Roads
where Roads.src = A.id and Roads.dst = B.id
`

func TestExecOverWire(t *testing.T) {
	addr, eng, shutdown := startServer(t, "")
	defer shutdown()

	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec(setupScript, nil); err != nil {
		t.Fatalf("DDL over wire: %v", err)
	}
	// Populate server-side via the engine's in-memory ingest (the wire
	// path for data is ingest of files on the server's filesystem).
	if err := eng.IngestReader("Cities", strings.NewReader("p,US\nq,US\nr,CA\n")); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Roads", strings.NewReader("p,q\nq,r\n")); err != nil {
		t.Fatal(err)
	}

	resp, err := cl.Exec(`select B.id from graph City (id = %Start%) --road--> def B: City ( )`,
		map[string]server.Param{"Start": {Type: "varchar", Value: "p"}})
	if err != nil {
		t.Fatalf("query over wire: %v", err)
	}
	rows := resp.Results[0].Rows
	if len(rows) != 1 || rows[0][0] != "q" {
		t.Errorf("rows = %v", rows)
	}
}

func TestCheckAndErrorsOverWire(t *testing.T) {
	addr, _, shutdown := startServer(t, "")
	defer shutdown()
	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Check(setupScript); err != nil {
		t.Errorf("valid script rejected: %v", err)
	}
	_, err = cl.Check(`select x from table Missing`)
	if err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Errorf("check error = %v", err)
	}
	// Execution errors come back as frames, not dropped connections.
	_, err = cl.Exec(`select x from table Missing`, nil)
	if err == nil {
		t.Error("exec of bad script must error")
	}
	// The session must still work afterwards.
	if _, err := cl.Stats(); err != nil {
		t.Errorf("session broken after error: %v", err)
	}
}

// TestCompileAndExecIR exercises the §III front-end/backend split: compile
// once, ship IR, execute.
func TestCompileAndExecIR(t *testing.T) {
	addr, eng, shutdown := startServer(t, "")
	defer shutdown()
	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec(setupScript, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Cities", strings.NewReader("p,US\nq,US\n")); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Roads", strings.NewReader("p,q\n")); err != nil {
		t.Fatal(err)
	}

	irB64, err := cl.Compile(`select B.id from graph City (id = 'p') --road--> def B: City ( )`)
	if err != nil {
		t.Fatal(err)
	}
	if irB64 == "" {
		t.Fatal("empty IR")
	}
	resp, err := cl.ExecIR(irB64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results[0].Rows) != 1 || resp.Results[0].Rows[0][0] != "q" {
		t.Errorf("IR execution rows = %v", resp.Results[0].Rows)
	}
	if _, err := cl.ExecIR("!!!notbase64", nil); err == nil {
		t.Error("bad IR must error")
	}
}

func TestStatsOverWire(t *testing.T) {
	addr, eng, shutdown := startServer(t, "")
	defer shutdown()
	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec(setupScript, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Cities", strings.NewReader("p,US\n")); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range resp.Catalog {
		if e.Kind == "vertex" && e.Name == "City" && e.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("catalog missing City stats: %+v", resp.Catalog)
	}
}

func TestAuthentication(t *testing.T) {
	addr, _, shutdown := startServer(t, "sekrit")
	defer shutdown()

	// Wrong token: Dial's ping must fail.
	if _, err := client.Dial(addr, "wrong"); err == nil {
		t.Error("wrong token accepted")
	}
	cl, err := client.Dial(addr, "sekrit")
	if err != nil {
		t.Fatalf("right token rejected: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Stats(); err != nil {
		t.Errorf("authenticated stats failed: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, eng, shutdown := startServer(t, "")
	defer shutdown()
	if _, err := eng.ExecScript(setupScript, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Cities", strings.NewReader("p,US\nq,US\n")); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Roads", strings.NewReader("p,q\n")); err != nil {
		t.Fatal(err)
	}
	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			cl, err := client.Dial(addr, "")
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for j := 0; j < 20; j++ {
				resp, err := cl.Exec(`select B.id from graph City (id = 'p') --road--> def B: City ( )`, nil)
				if err != nil {
					errs <- err
					return
				}
				if len(resp.Results[0].Rows) != 1 {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
