package server

import (
	"container/list"
	"fmt"
	"sync"

	"graql/internal/exec"
)

// PreparedSet is the server-side registry of prepared statement
// handles, shared between the TCP and HTTP front-ends so a statement
// prepared over one wire is executable over the other. Handles are
// identified by server-assigned ids ("s1", "s2", ...) and bounded by an
// LRU: preparing past the capacity evicts the least-recently-executed
// handle (a later execute of an evicted id fails with a structured
// bad_request, and the client re-prepares).
type PreparedSet struct {
	mu  sync.Mutex
	cap int
	m   map[string]*preparedEntry
	lru *list.List
	seq uint64
}

type preparedEntry struct {
	id   string
	p    *exec.Prepared
	elem *list.Element
}

// DefaultPreparedCap bounds a PreparedSet constructed with cap <= 0.
const DefaultPreparedCap = 1024

// NewPreparedSet returns a registry bounded to cap handles (cap <= 0
// uses DefaultPreparedCap).
func NewPreparedSet(cap int) *PreparedSet {
	if cap <= 0 {
		cap = DefaultPreparedCap
	}
	return &PreparedSet{cap: cap, m: make(map[string]*preparedEntry), lru: list.New()}
}

// Add registers a handle and returns its assigned id.
func (s *PreparedSet) Add(p *exec.Prepared) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id := fmt.Sprintf("s%d", s.seq)
	e := &preparedEntry{id: id, p: p}
	e.elem = s.lru.PushFront(e)
	s.m[id] = e
	for len(s.m) > s.cap {
		victim := s.lru.Back().Value.(*preparedEntry)
		s.lru.Remove(victim.elem)
		delete(s.m, victim.id)
	}
	return id
}

// Get resolves an id to its handle (nil when unknown or evicted),
// marking it most recently used.
func (s *PreparedSet) Get(id string) *exec.Prepared {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[id]
	if !ok {
		return nil
	}
	s.lru.MoveToFront(e.elem)
	return e.p
}

// Remove deallocates a handle, reporting whether the id was known.
func (s *PreparedSet) Remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[id]
	if !ok {
		return false
	}
	s.lru.Remove(e.elem)
	delete(s.m, id)
	return true
}

// Len reports how many handles are registered.
func (s *PreparedSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
