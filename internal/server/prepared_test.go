package server_test

import (
	"strings"
	"testing"

	"graql/internal/client"
	"graql/internal/exec"
	"graql/internal/server"
)

func TestPreparedSetLRUAndRemove(t *testing.T) {
	eng := exec.New(exec.DefaultOptions())
	if _, err := eng.ExecScript(`create table T(a integer)`, nil); err != nil {
		t.Fatal(err)
	}
	mk := func() *exec.Prepared {
		p, err := eng.Prepare(`select a from table T`)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	s := server.NewPreparedSet(2)
	id1 := s.Add(mk())
	id2 := s.Add(mk())
	// Touch id1 so id2 becomes the LRU victim of the next Add.
	if s.Get(id1) == nil {
		t.Fatal("id1 missing right after Add")
	}
	id3 := s.Add(mk())
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if s.Get(id2) != nil {
		t.Error("least-recently-used handle survived past capacity")
	}
	if s.Get(id1) == nil || s.Get(id3) == nil {
		t.Error("recently used handles were evicted")
	}

	if !s.Remove(id1) {
		t.Error("Remove of a known id reported false")
	}
	if s.Get(id1) != nil {
		t.Error("removed handle still resolvable")
	}
	if s.Remove(id1) {
		t.Error("second Remove of the same id reported true")
	}
}

func TestPreparedOverWire(t *testing.T) {
	addr, eng, shutdown := startServer(t, "")
	defer shutdown()

	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec(setupScript, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Cities", strings.NewReader("p,US\nq,US\nr,CA\n")); err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestReader("Roads", strings.NewReader("p,q\nq,r\n")); err != nil {
		t.Fatal(err)
	}

	stmt, err := cl.Prepare(`select B.id from graph City (id = %Start%) --road--> def B: City ( )`)
	if err != nil {
		t.Fatalf("prepare over wire: %v", err)
	}
	if stmt == "" {
		t.Fatal("prepare returned an empty handle id")
	}

	// Same handle, rebound parameters: each execute sees its own binding.
	for start, want := range map[string]string{"p": "q", "q": "r"} {
		resp, err := cl.Execute(stmt, map[string]server.Param{
			"Start": {Type: "varchar", Value: start},
		})
		if err != nil {
			t.Fatalf("execute Start=%s: %v", start, err)
		}
		rows := resp.Results[0].Rows
		if len(rows) != 1 || rows[0][0] != want {
			t.Errorf("Start=%s rows = %v, want [[%s]]", start, rows, want)
		}
	}

	if err := cl.Deallocate(stmt); err != nil {
		t.Fatalf("deallocate: %v", err)
	}
	resp, err := cl.Execute(stmt, nil)
	if err == nil {
		t.Fatal("execute of a deallocated handle succeeded")
	}
	if resp == nil || resp.Code != server.CodeBadRequest {
		t.Errorf("code = %v, want %s", resp, server.CodeBadRequest)
	}
	if !strings.Contains(err.Error(), "unknown prepared statement") {
		t.Errorf("error = %v", err)
	}
}

// The wire also accepts prepare-by-IR: compile once, prepare the
// compiled artifact directly (no text front-end on the second hop).
func TestPrepareFromIROverWire(t *testing.T) {
	addr, _, shutdown := startServer(t, "")
	defer shutdown()
	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec(`create table T(a integer)
insert into T values (42)`, nil); err != nil {
		t.Fatal(err)
	}
	irB64, err := cl.Compile(`select a from table T`)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.RoundTrip(&server.Request{Op: "prepare", IR: irB64})
	if err != nil {
		t.Fatalf("prepare from IR: %v", err)
	}
	out, err := cl.Execute(resp.Stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows := out.Results[0].Rows; len(rows) != 1 || rows[0][0] != "42" {
		t.Errorf("rows = %v", rows)
	}

	// Corrupt base64 → structured bad_request, not a parse error.
	bad, err := cl.RoundTrip(&server.Request{Op: "prepare", IR: "!!not-base64!!"})
	if err == nil || bad == nil || bad.Code != server.CodeBadRequest {
		t.Errorf("bad base64: resp=%v err=%v", bad, err)
	}
	// Neither script nor IR → bad_request.
	none, err := cl.RoundTrip(&server.Request{Op: "prepare"})
	if err == nil || none == nil || none.Code != server.CodeBadRequest {
		t.Errorf("empty prepare: resp=%v err=%v", none, err)
	}
}

func TestPrepareErrorsOverWire(t *testing.T) {
	addr, _, shutdown := startServer(t, "")
	defer shutdown()
	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Prepare("select from where"); err == nil {
		t.Error("parse error must fail the wire prepare")
	}
	if _, err := cl.Prepare(""); err == nil {
		t.Error("empty script must fail the wire prepare")
	}
	if err := cl.Deallocate("s999"); err == nil {
		t.Error("deallocate of an unknown handle must fail")
	}
	if _, err := cl.Execute("", nil); err == nil {
		t.Error("execute without a handle id must fail")
	}
}

// A statement prepared after DML over the same wire sees the data; a
// statement prepared before DML re-plans after the epoch moves (the
// wire-level view of the plan-cache invalidation contract).
func TestPreparedSeesWireDML(t *testing.T) {
	addr, _, shutdown := startServer(t, "")
	defer shutdown()
	cl, err := client.Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec(`create table KV(id integer, v varchar(8))`, nil); err != nil {
		t.Fatal(err)
	}
	stmt, err := cl.Prepare(`select count(*) as c from table KV`)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"0", "1", "2"} {
		resp, err := cl.Execute(stmt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Results[0].Rows[0][0]; got != want {
			t.Fatalf("execute %d: count = %s, want %s", i, got, want)
		}
		if _, err := cl.Exec(`insert into KV values (1, 'x')`, nil); err != nil {
			t.Fatal(err)
		}
	}
}
