// Package catalog implements the GEMS metadata repository (paper §III):
// the central registry of all database objects — tables, vertex and edge
// types, named subgraph results — together with the size and degree
// statistics the dynamic query planner consumes (§III-B).
//
// The catalog also retains the declaration AST of every vertex and edge
// type so that views can be rebuilt when their underlying tables are
// re-ingested (ingest "triggers not only the population of rows in the
// table, but also the generation of associated vertex and edge instances",
// §II-A2).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"graql/internal/ast"
	"graql/internal/graph"
	"graql/internal/table"
)

// Catalog is the metadata repository. It is safe for concurrent use; query
// execution takes a read view while DDL and ingest take the write lock,
// which is what makes data definition and ingest atomic with respect to
// queries (paper §III).
type Catalog struct {
	mu sync.RWMutex

	// wmu serialises mutating statements (DDL, ingest, DML) against each
	// other without blocking readers: a writer holds wmu across its whole
	// build-aside phase (under mu.RLock or no lock) and only takes mu for
	// the brief commit swap. Lock order is always wmu before mu.
	wmu sync.Mutex

	// epoch counts committed catalog mutations. Readers that capture it
	// under RLock can detect whether any write committed in between; every
	// commit happens atomically with the epoch bump under mu.
	epoch uint64

	tables      map[string]*table.Table
	tableOrder  []string
	graph       *graph.Graph
	vertexDecls []*ast.CreateVertex
	edgeDecls   []*ast.CreateEdge
	subgraphs   map[string]*graph.Subgraph
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:    make(map[string]*table.Table),
		graph:     graph.NewGraph(),
		subgraphs: make(map[string]*graph.Subgraph),
	}
}

// Lock acquires the write lock for a DDL/ingest mutation.
func (c *Catalog) Lock() { c.mu.Lock() }

// Unlock releases the write lock.
func (c *Catalog) Unlock() { c.mu.Unlock() }

// RLock acquires the read lock for query execution.
func (c *Catalog) RLock() { c.mu.RLock() }

// RUnlock releases the read lock.
func (c *Catalog) RUnlock() { c.mu.RUnlock() }

// BeginWrite serialises this mutating statement against other writers.
// It must be acquired before any mu lock (never while holding one).
func (c *Catalog) BeginWrite() { c.wmu.Lock() }

// EndWrite releases the writer mutex.
func (c *Catalog) EndWrite() { c.wmu.Unlock() }

// Epoch returns the number of committed catalog mutations. Callers must
// hold at least the read lock.
func (c *Catalog) Epoch() uint64 { return c.epoch }

// BumpEpoch marks one committed mutation. Callers must hold the write
// lock; the bump is therefore atomic with the mutation it records.
func (c *Catalog) BumpEpoch() { c.epoch++ }

// The methods below assume the caller holds the appropriate lock; the
// engine (internal/exec) brackets statement execution with Lock/RLock.

// RegisterTable adds a new base or result table. Result tables (from
// "into table") replace any previous table of the same name; base tables
// may not be redeclared.
func (c *Catalog) RegisterTable(t *table.Table, replace bool) error {
	key := strings.ToLower(t.Name)
	if _, dup := c.tables[key]; dup {
		if !replace {
			return fmt.Errorf("graql: table %s already exists", t.Name)
		}
	} else {
		c.tableOrder = append(c.tableOrder, key)
	}
	c.tables[key] = t
	return nil
}

// SwapTable atomically replaces the contents of an existing table (the
// commit step of an ingest).
func (c *Catalog) SwapTable(t *table.Table) error {
	key := strings.ToLower(t.Name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("graql: unknown table %s", t.Name)
	}
	c.tables[key] = t
	return nil
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *table.Table {
	return c.tables[strings.ToLower(name)]
}

// Tables returns all tables in registration order.
func (c *Catalog) Tables() []*table.Table {
	out := make([]*table.Table, 0, len(c.tableOrder))
	for _, k := range c.tableOrder {
		out = append(out, c.tables[k])
	}
	return out
}

// Graph returns the current typed multigraph of all vertex/edge views.
func (c *Catalog) Graph() *graph.Graph { return c.graph }

// SetGraph installs a freshly rebuilt view graph (after DDL or ingest).
func (c *Catalog) SetGraph(g *graph.Graph) { c.graph = g }

// AddVertexDecl records a create-vertex declaration (after validation).
func (c *Catalog) AddVertexDecl(d *ast.CreateVertex) { c.vertexDecls = append(c.vertexDecls, d) }

// AddEdgeDecl records a create-edge declaration (after validation).
func (c *Catalog) AddEdgeDecl(d *ast.CreateEdge) { c.edgeDecls = append(c.edgeDecls, d) }

// VertexDecls returns the recorded vertex declarations in order.
func (c *Catalog) VertexDecls() []*ast.CreateVertex { return c.vertexDecls }

// EdgeDecls returns the recorded edge declarations in order.
func (c *Catalog) EdgeDecls() []*ast.CreateEdge { return c.edgeDecls }

// RegisterSubgraph stores a named subgraph result, replacing any previous
// one of the same name.
func (c *Catalog) RegisterSubgraph(s *graph.Subgraph) {
	c.subgraphs[strings.ToLower(s.Name)] = s
}

// Subgraph returns the named subgraph result, or nil.
func (c *Catalog) Subgraph(name string) *graph.Subgraph {
	return c.subgraphs[strings.ToLower(name)]
}

// ClearSubgraphs drops all named subgraph results. Ingest invalidates them
// because they reference the superseded vertex and edge views.
func (c *Catalog) ClearSubgraphs() {
	c.subgraphs = make(map[string]*graph.Subgraph)
}

// ObjectStats is a catalog entry in a statistics snapshot.
type ObjectStats struct {
	Kind  string // "table", "vertex" or "edge"
	Name  string
	Count int
	// Edge-only statistics for the planner (§III-B degree
	// distributions).
	AvgOutDegree float64
	AvgInDegree  float64
	MaxOutDegree int
	MaxInDegree  int
	SrcType      string
	DstType      string
}

// Stats returns a snapshot of object sizes and degree statistics — the
// catalog's "updated information on the sizes of those objects" (§III)
// that dynamic query planning consumes. Callers must hold at least the
// read lock.
func (c *Catalog) Stats() []ObjectStats {
	var out []ObjectStats
	for _, k := range c.tableOrder {
		t := c.tables[k]
		out = append(out, ObjectStats{Kind: "table", Name: t.Name, Count: t.NumRows()})
	}
	for _, vt := range c.graph.VertexTypes() {
		out = append(out, ObjectStats{Kind: "vertex", Name: vt.Name, Count: vt.Count()})
	}
	for _, et := range c.graph.EdgeTypes() {
		outDeg, inDeg := et.OutDegreeStats(), et.InDegreeStats()
		out = append(out, ObjectStats{
			Kind: "edge", Name: et.Name, Count: et.Count(),
			AvgOutDegree: outDeg.Avg, AvgInDegree: inDeg.Avg,
			MaxOutDegree: outDeg.Max, MaxInDegree: inDeg.Max,
			SrcType: et.Src.Name, DstType: et.Dst.Name,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}
