package catalog

import (
	"testing"

	"graql/internal/graph"
	"graql/internal/table"
	"graql/internal/value"
)

func newTable(t *testing.T, name string, rows int) *table.Table {
	t.Helper()
	tb := table.MustNew(name, table.Schema{{Name: "id", Type: value.Int}})
	for i := 0; i < rows; i++ {
		if err := tb.AppendRow([]value.Value{value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestTableRegistry(t *testing.T) {
	c := New()
	a := newTable(t, "A", 3)
	if err := c.RegisterTable(a, false); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTable(newTable(t, "a", 0), false); err == nil {
		t.Error("case-insensitive duplicate must fail without replace")
	}
	if err := c.RegisterTable(newTable(t, "A", 5), true); err != nil {
		t.Errorf("replace must succeed: %v", err)
	}
	if got := c.Table("a").NumRows(); got != 5 {
		t.Errorf("replaced table rows = %d", got)
	}
	if c.Table("missing") != nil {
		t.Error("missing table must be nil")
	}
	if len(c.Tables()) != 1 {
		t.Errorf("tables = %d", len(c.Tables()))
	}
}

func TestSwapTable(t *testing.T) {
	c := New()
	_ = c.RegisterTable(newTable(t, "A", 1), false)
	if err := c.SwapTable(newTable(t, "A", 9)); err != nil {
		t.Fatal(err)
	}
	if c.Table("A").NumRows() != 9 {
		t.Error("swap did not take effect")
	}
	if err := c.SwapTable(newTable(t, "B", 1)); err == nil {
		t.Error("swapping an unknown table must fail")
	}
}

func TestSubgraphRegistry(t *testing.T) {
	c := New()
	c.RegisterSubgraph(graph.NewSubgraph("S1"))
	if c.Subgraph("s1") == nil {
		t.Error("subgraph lookup must be case-insensitive")
	}
	c.ClearSubgraphs()
	if c.Subgraph("S1") != nil {
		t.Error("ClearSubgraphs must drop results")
	}
}

func TestStatsSnapshot(t *testing.T) {
	c := New()
	base := newTable(t, "Base", 4)
	_ = c.RegisterTable(base, false)
	vt, err := graph.BuildVertexType(0, "V", base, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Graph().AddVertexType(vt)
	et := graph.NewEdgeType(0, "E", vt, vt, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}, nil, true)
	_ = c.Graph().AddEdgeType(et)

	stats := c.Stats()
	byName := map[string]ObjectStats{}
	for _, s := range stats {
		byName[s.Kind+"/"+s.Name] = s
	}
	if byName["table/Base"].Count != 4 {
		t.Errorf("table stats = %+v", byName["table/Base"])
	}
	if byName["vertex/V"].Count != 4 {
		t.Errorf("vertex stats = %+v", byName["vertex/V"])
	}
	e := byName["edge/E"]
	if e.Count != 2 || e.AvgOutDegree != 0.5 || e.SrcType != "V" {
		t.Errorf("edge stats = %+v", e)
	}
}
