package bsbm

import (
	"fmt"
	"strconv"

	"graql/internal/value"
)

// paramKinds records the value kind of each suite parameter.
var paramKinds = map[string]value.Kind{
	"Country1":  value.KindString,
	"Country2":  value.KindString,
	"Product1":  value.KindString,
	"Type1":     value.KindString,
	"Producer1": value.KindString,
	"Lower":     value.KindInt,
	"MaxPrice":  value.KindFloat,
}

// TypedParams converts textual parameter bindings (e.g. DefaultParams or
// command-line flags) into typed values for the engine.
func TypedParams(raw map[string]string) (map[string]value.Value, error) {
	out := make(map[string]value.Value, len(raw))
	for name, s := range raw {
		kind, ok := paramKinds[name]
		if !ok {
			kind = value.KindString
		}
		switch kind {
		case value.KindInt:
			i, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bsbm: parameter %s: %v", name, err)
			}
			out[name] = value.NewInt(i)
		case value.KindFloat:
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("bsbm: parameter %s: %v", name, err)
			}
			out[name] = value.NewFloat(f)
		default:
			out[name] = value.NewString(s)
		}
	}
	return out, nil
}
