// Package bsbm provides the Berlin SPARQL Benchmark workload exactly as
// the paper recasts it: the relational schema of Appendix A, the vertex
// and edge view declarations of Figs. 2–4, a deterministic scale-factor
// data generator with BSBM-like cardinality ratios, and the GraQL business
// intelligence query suite (the paper's Q1/Q2 plus further queries
// exercising every language feature).
package bsbm

// SchemaDDL is the paper's Appendix A table declarations plus the two
// relation tables (ProductTypes, ProductFeatures) referenced in §II-A.
const SchemaDDL = `
create table Types(
  id varchar(10),
  type varchar(20),
  comment varchar(255),
  subclassOf varchar(10),
  publisher varchar(10),
  date date
)

create table Features(
  id varchar(10),
  type varchar(20),
  label varchar(10),
  comment varchar(255),
  publisher varchar(10),
  date date
)

create table Producers(
  id varchar(10),
  type varchar(20),
  label varchar(10),
  comment varchar(255),
  homepage varchar(40),
  country varchar(10),
  publisher varchar(10),
  date date
)

create table Products(
  id varchar(10),
  type varchar(20),
  label varchar(10),
  comment varchar(255),
  producer varchar(10),
  propertyNumeric_1 integer,
  propertyNumeric_2 integer,
  propertyNumeric_3 integer,
  propertyText_1 varchar(20),
  propertyText_2 varchar(20),
  publisher varchar(10),
  date date
)

create table Vendors(
  id varchar(10),
  type varchar(20),
  label varchar(10),
  comment varchar(255),
  homepage varchar(40),
  country varchar(10),
  publisher varchar(10),
  date date
)

create table Offers(
  id varchar(10),
  type varchar(20),
  product varchar(10),
  vendor varchar(10),
  price float,
  validFrom date,
  validTo date,
  deliveryDays integer,
  offerWebPage varchar(40),
  publisher varchar(10),
  date date
)

create table Persons(
  id varchar(10),
  type varchar(20),
  name varchar(20),
  mailbox varchar(40),
  country varchar(10),
  publisher varchar(10),
  date date
)

create table Reviews(
  id varchar(10),
  type varchar(20),
  reviewFor varchar(10),
  reviewer varchar(10),
  reviewDate date,
  title varchar(20),
  text varchar(255),
  ratings_1 integer,
  ratings_2 integer,
  ratings_3 integer,
  ratings_4 integer,
  publisher varchar(10),
  date date
)

create table ProductTypes(
  product varchar(10),
  type varchar(10)
)

create table ProductFeatures(
  product varchar(10),
  feature varchar(10)
)
`

// ViewDDL is the paper's Fig. 2 vertex declarations and Fig. 3 edge
// declarations, verbatim modulo whitespace (the "feature" edge references
// ProductFeatures without a from clause exactly as printed in Fig. 3; the
// analyzer adds the implicit table).
const ViewDDL = `
create vertex TypeVtx(id) from table Types
create vertex FeatureVtx(id) from table Features
create vertex ProducerVtx(id) from table Producers
create vertex ProductVtx(id) from table Products
create vertex VendorVtx(id) from table Vendors
create vertex OfferVtx(id) from table Offers
create vertex PersonVtx(id) from table Persons
create vertex ReviewVtx(id) from table Reviews

create edge subclass with
vertices (TypeVtx as A, TypeVtx as B)
where A.subclassOf = B.id

create edge producer with
vertices (ProductVtx, ProducerVtx)
where ProductVtx.producer = ProducerVtx.id

create edge type with
vertices (ProductVtx, TypeVtx)
from table ProductTypes
where ProductTypes.product = ProductVtx.id
and ProductTypes.type = TypeVtx.id

create edge feature with
vertices (ProductVtx, FeatureVtx)
where ProductFeatures.product = ProductVtx.id
and ProductFeatures.feature = FeatureVtx.id

create edge product with
vertices (OfferVtx, ProductVtx)
where OfferVtx.product = ProductVtx.id

create edge vendor with
vertices (OfferVtx, VendorVtx)
where OfferVtx.vendor = VendorVtx.id

create edge reviewFor with
vertices (ReviewVtx, ProductVtx)
where ReviewVtx.reviewFor = ProductVtx.id

create edge reviewer with
vertices (ReviewVtx, PersonVtx)
where ReviewVtx.reviewer = PersonVtx.id
`

// CountryViewDDL is the paper's Fig. 4 extension: many-to-one country
// vertices over the Producers and Vendors tables and the derived export
// edge ("an edge for every product produced in one country and offered by
// a vendor in another country", realised by the 4-way join of Fig. 5).
const CountryViewDDL = `
create vertex ProducerCountry(country) from table Producers
create vertex VendorCountry(country) from table Vendors

create edge export with
vertices (ProducerCountry, VendorCountry)
where Producers.country = ProducerCountry.country
and Products.producer = Producers.id
and Offers.product = Products.id
and Offers.vendor = Vendors.id
and Vendors.country = VendorCountry.country
`

// IngestDDL returns the ingest commands for the standard file layout.
const IngestDDL = `
ingest table Types types.csv
ingest table Features features.csv
ingest table Producers producers.csv
ingest table Products products.csv
ingest table Vendors vendors.csv
ingest table Offers offers.csv
ingest table Persons persons.csv
ingest table Reviews reviews.csv
ingest table ProductTypes producttypes.csv
ingest table ProductFeatures productfeatures.csv
`

// FullDDL is the complete Berlin setup: tables, views, country extension
// and ingest, in dependency order. Note ingest must come after all view
// declarations so the views derive from populated tables exactly once.
const FullDDL = SchemaDDL + ViewDDL + CountryViewDDL + IngestDDL
