package bsbm

import (
	"strings"
	"testing"

	"graql/internal/exec"
)

// TestBerlinScriptStaticallyValid runs the paper's entire setup plus the
// query suite through static analysis alone (§III-A): the catalog metadata
// suffices to validate everything without touching data.
func TestBerlinScriptStaticallyValid(t *testing.T) {
	script := FullDDL
	for _, q := range Suite {
		script += "\n" + q.Script
	}
	if err := exec.CheckScript(script); err != nil {
		t.Fatalf("Berlin corpus fails static analysis: %v", err)
	}
}

// TestBerlinScriptCatchesInjectedErrors: static analysis flags a corrupted
// script without executing anything.
func TestBerlinScriptCatchesInjectedErrors(t *testing.T) {
	bad := strings.Replace(FullDDL,
		"where ProductVtx.producer = ProducerVtx.id",
		"where ProductVtx.producer = ProducerVtx.date", 1)
	err := exec.CheckScript(bad)
	if err == nil {
		t.Fatal("type-corrupted edge declaration must fail static analysis")
	}
	if !strings.Contains(err.Error(), "compare") && !strings.Contains(err.Error(), "date") {
		t.Errorf("error should be a type error: %v", err)
	}
}
