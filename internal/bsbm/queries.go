package bsbm

// Query is one Berlin business-intelligence query: a GraQL script template
// with %name% parameters.
type Query struct {
	ID     string
	Title  string
	Script string
	// Params are the parameter names the script expects.
	Params []string
}

// Q1 is the paper's Fig. 7 query: the top 10 most-reviewed product types
// for products made in Country1, based on reviews by reviewers from
// Country2. It exercises element-wise ("foreach") labels and and-composed
// multi-path patterns (Fig. 8).
var Q1 = Query{
	ID:    "BQ1",
	Title: "Top product types from Country1 reviewed by Country2",
	Script: `
select TypeVtx.id from graph
PersonVtx (country = %Country2%)
<--reviewer-- ReviewVtx
--reviewFor--> foreach y: ProductVtx
--producer--> ProducerVtx (country = %Country1%)
and (y --type--> TypeVtx)
into table T1

select top 10 id, count(*) as groupCount
from table T1
group by id order by groupCount desc, id asc
`,
	Params: []string{"Country1", "Country2"},
}

// Q2 is the paper's Fig. 6 query: the top 10 products most similar to
// Product1, rated by the count of shared features. It exercises set
// ("def") labels and binding multiplicity in results-as-tables.
var Q2 = Query{
	ID:    "BQ2",
	Title: "Top products sharing features with Product1",
	Script: `
select y.id from graph
ProductVtx (id = %Product1%)
--feature--> FeatureVtx
<--feature-- def y: ProductVtx (id <> %Product1%)
into table T1

select top 10 id, count(*) as groupCount
from table T1
group by id order by groupCount desc, id asc
`,
	Params: []string{"Product1"},
}

// Q3: products of a given type with a numeric property above a threshold —
// a graph step joined with attribute filtering, then relational
// post-processing.
var Q3 = Query{
	ID:    "BQ3",
	Title: "Products of a type with propertyNumeric_1 above a bound",
	Script: `
select y.id, y.propertyNumeric_1 from graph
TypeVtx (id = %Type1%)
<--type-- def y: ProductVtx (propertyNumeric_1 > %Lower%)
into table T3

select top 10 id, propertyNumeric_1
from table T3
order by propertyNumeric_1 desc, id asc
`,
	Params: []string{"Type1", "Lower"},
}

// Q4: cheap in-date offers for a product from vendors in a given country —
// conditions on three different steps of one path.
var Q4 = Query{
	ID:    "BQ4",
	Title: "Offers for Product1 from Country1 vendors under a price bound",
	Script: `
select o.id, o.price, o.deliveryDays from graph
ProductVtx (id = %Product1%)
<--product-- def o: OfferVtx (price < %MaxPrice% and validTo >= date '2009-01-01')
--vendor--> VendorVtx (country = %Country1%)
into table T4

select id, price, deliveryDays from table T4 order by price asc
`,
	Params: []string{"Product1", "MaxPrice", "Country1"},
}

// Q5: average rating per product of a producer — graph capture followed by
// group-by aggregation (avg) in table space.
var Q5 = Query{
	ID:    "BQ5",
	Title: "Average review rating per product of Producer1",
	Script: `
select y.id, r.ratings_1 from graph
ProducerVtx (id = %Producer1%)
<--producer-- foreach y: ProductVtx
<--reviewFor-- def r: ReviewVtx
into table T5

select top 10 id, avg(ratings_1) as avgRating, count(*) as nReviews
from table T5
group by id order by avgRating desc, id asc
`,
	Params: []string{"Producer1"},
}

// Q6: distinct reviewers of products produced in a country — a four-hop
// path with distinct elimination.
var Q6 = Query{
	ID:    "BQ6",
	Title: "Reviewers who reviewed products produced in Country1",
	Script: `
select distinct u.id from graph
ProducerVtx (country = %Country1%)
<--producer-- ProductVtx
<--reviewFor-- ReviewVtx
--reviewer--> def u: PersonVtx
into table T6

select count(*) as reviewers from table T6
`,
	Params: []string{"Country1"},
}

// Q7 is the paper's Fig. 9 query: the subgraph of everything directly
// connected to Product1 by any in-edge — offers (via product) and reviews
// (via reviewFor) — using "[ ]" variant steps.
var Q7 = Query{
	ID:    "BQ7",
	Title: "Subgraph of all offers and reviews of Product1 (variant steps)",
	Script: `
select * from graph
ProductVtx (id = %Product1%) <--[ ]-- [ ]
into subgraph q7res
`,
	Params: []string{"Product1"},
}

// Q8 is the paper's Fig. 10 shape: the type ancestry of a product's types
// via the subclass+ closure — a path regular expression over the type
// hierarchy.
var Q8 = Query{
	ID:    "BQ8",
	Title: "Ancestor types of Product1 via subclass closure (path regex)",
	Script: `
select distinct a.id from graph
ProductVtx (id = %Product1%)
--type--> TypeVtx
( --subclass--> [ ] )+
def a: TypeVtx
into table T8

select id from table T8 order by id asc
`,
	Params: []string{"Product1"},
}

// Suite is the full query suite in id order.
var Suite = []Query{Q1, Q2, Q3, Q4, Q5, Q6, Q7, Q8}

// DefaultParams supplies parameter bindings that are guaranteed to match
// data in every generated dataset (see Generate's shape guarantees).
func DefaultParams() map[string]string {
	return map[string]string{
		"Country1":  "US",
		"Country2":  "DE",
		"Product1":  "p1",
		"Type1":     "t1",
		"Lower":     "1000",
		"MaxPrice":  "5000",
		"Producer1": "m0",
	}
}
