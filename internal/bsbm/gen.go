package bsbm

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
)

// Countries is the fixed country vocabulary used for producers, vendors
// and reviewers.
var Countries = []string{"US", "DE", "FR", "UK", "CN", "JP", "IT", "ES", "CA", "RU"}

// Config sizes a generated Berlin dataset. The scale factor follows
// BSBM's convention of products as the scaling unit; the other entity
// counts derive with BSBM-like ratios.
type Config struct {
	// ScaleFactor multiplies the base product count (200 products per
	// unit).
	ScaleFactor int
	// Seed makes generation deterministic.
	Seed int64
}

// Counts returns the entity cardinalities for the configuration.
func (c Config) Counts() (products, producers, features, types, vendors, offers, persons, reviews int) {
	sf := c.ScaleFactor
	if sf < 1 {
		sf = 1
	}
	products = 200 * sf
	producers = products/20 + 1
	features = products/4 + 10
	types = products/40 + 7
	vendors = products/25 + 1
	offers = products * 4
	persons = products/2 + 5
	reviews = products * 5
	return
}

// Dataset is a generated Berlin dataset: one CSV body per ingest file
// name (matching IngestDDL).
type Dataset struct {
	Config Config
	Files  map[string]string
}

// Generate builds a deterministic dataset for the configuration.
//
// Shape guarantees relied on by the query suite:
//   - the Types table is a tree via subclassOf (roots have empty
//     subclassOf), giving the subclass+ closure of Fig. 10 real depth;
//   - every product has 1–2 types, 3–8 features, a producer;
//   - offers and reviews reference uniformly random products;
//   - anchor rows pin the suite's default parameters: producer m0 and
//     vendor v0 are in the US, persons u0–u4 in DE, and offers o0–o9 are
//     cheap offers of product p1 by vendor v0 — so every suite query has
//     matches at every scale.
func Generate(cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nProducts, nProducers, nFeatures, nTypes, nVendors, nOffers, nPersons, nReviews := cfg.Counts()

	var b strings.Builder
	files := make(map[string]string, 10)
	flush := func(name string) {
		files[name] = b.String()
		b.Reset()
	}
	country := func() string { return Countries[rng.Intn(len(Countries))] }
	date := func() string {
		return fmt.Sprintf("%04d-%02d-%02d", 2006+rng.Intn(3), 1+rng.Intn(12), 1+rng.Intn(28))
	}

	// Types: a tree. The first `roots` types are roots; each later type
	// subclasses a strictly earlier type, so subclassOf chains terminate.
	roots := 3
	if nTypes < roots {
		roots = nTypes
	}
	for i := 0; i < nTypes; i++ {
		parent := ""
		if i >= roots {
			parent = fmt.Sprintf("t%d", rng.Intn(i))
		}
		fmt.Fprintf(&b, "t%d,ProductType,type %d comment,%s,pub%d,%s\n", i, i, parent, rng.Intn(10), date())
	}
	flush("types.csv")

	for i := 0; i < nFeatures; i++ {
		fmt.Fprintf(&b, "f%d,ProductFeature,feat%d,feature %d comment,pub%d,%s\n", i, i, i, rng.Intn(10), date())
	}
	flush("features.csv")

	for i := 0; i < nProducers; i++ {
		c := country()
		if i == 0 {
			c = "US" // anchor for %Producer1%/%Country1%
		}
		fmt.Fprintf(&b, "m%d,Producer,maker%d,producer %d comment,http://m%d.example,%s,pub%d,%s\n",
			i, i, i, i, c, rng.Intn(10), date())
	}
	flush("producers.csv")

	for i := 0; i < nProducts; i++ {
		fmt.Fprintf(&b, "p%d,Product,prod%d,product %d comment,m%d,%d,%d,%d,text%d,text%d,pub%d,%s\n",
			i, i, i, rng.Intn(nProducers),
			rng.Intn(2000), rng.Intn(2000), rng.Intn(2000),
			rng.Intn(100), rng.Intn(100), rng.Intn(10), date())
	}
	flush("products.csv")

	for i := 0; i < nVendors; i++ {
		c := country()
		if i == 0 {
			c = "US" // anchor: BQ4 looks for US vendors of p1
		}
		fmt.Fprintf(&b, "v%d,Vendor,vendor%d,vendor %d comment,http://v%d.example,%s,pub%d,%s\n",
			i, i, i, i, c, rng.Intn(10), date())
	}
	flush("vendors.csv")

	for i := 0; i < nOffers; i++ {
		prod, vend := rng.Intn(nProducts), rng.Intn(nVendors)
		price := 10 + rng.Float64()*9990
		if i < 10 {
			prod, vend = 1, 0 // anchor: cheap US offers of p1 for BQ4
			price = 100 + float64(i)*50
		}
		fmt.Fprintf(&b, "o%d,Offer,p%d,v%d,%.2f,%s,%s,%d,http://o%d.example,pub%d,%s\n",
			i, prod, vend, price, date(), "2009-12-31", 1+rng.Intn(14), i, rng.Intn(10), date())
	}
	flush("offers.csv")

	for i := 0; i < nPersons; i++ {
		c := country()
		if i < 5 {
			c = "DE" // anchor reviewers for %Country2%
		}
		fmt.Fprintf(&b, "u%d,Person,user%d,u%d@example.org,%s,pub%d,%s\n",
			i, i, i, c, rng.Intn(10), date())
	}
	flush("persons.csv")

	for i := 0; i < nReviews; i++ {
		fmt.Fprintf(&b, "r%d,Review,p%d,u%d,%s,title%d,review %d text,%d,%d,%d,%d,pub%d,%s\n",
			i, rng.Intn(nProducts), rng.Intn(nPersons), date(), i, i,
			1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10),
			rng.Intn(10), date())
	}
	flush("reviews.csv")

	for i := 0; i < nProducts; i++ {
		nt := 1 + rng.Intn(2)
		seen := map[int]bool{}
		if i == 1 {
			// Anchor: p1 always carries the deepest type so the BQ8
			// subclass+ closure has real ancestry at every scale.
			seen[nTypes-1] = true
			fmt.Fprintf(&b, "p%d,t%d\n", i, nTypes-1)
		}
		for j := 0; j < nt; j++ {
			ty := rng.Intn(nTypes)
			if seen[ty] {
				continue
			}
			seen[ty] = true
			fmt.Fprintf(&b, "p%d,t%d\n", i, ty)
		}
	}
	flush("producttypes.csv")

	for i := 0; i < nProducts; i++ {
		nf := 3 + rng.Intn(6)
		seen := map[int]bool{}
		for j := 0; j < nf; j++ {
			f := rng.Intn(nFeatures)
			if seen[f] {
				continue
			}
			seen[f] = true
			fmt.Fprintf(&b, "p%d,f%d\n", i, f)
		}
	}
	flush("productfeatures.csv")

	return &Dataset{Config: cfg, Files: files}
}

// WriteDir writes the dataset's CSV files into dir (created if needed).
func (d *Dataset) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, body := range d.Files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Open returns a FileOpener (for exec.Options) serving the dataset from
// memory.
func (d *Dataset) Open(path string) (body string, ok bool) {
	s, ok := d.Files[path]
	return s, ok
}
