package bsbm

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"testing"

	"graql/internal/exec"
	"graql/internal/parser"
)

// engineFor loads a generated dataset into a fresh engine.
func engineFor(t testing.TB, cfg Config) *exec.Engine {
	t.Helper()
	ds := Generate(cfg)
	opts := exec.DefaultOptions()
	opts.FileOpener = func(path string) (io.ReadCloser, error) {
		body, ok := ds.Files[path]
		if !ok {
			return nil, fmt.Errorf("bsbm: no generated file %s", path)
		}
		return io.NopCloser(strings.NewReader(body)), nil
	}
	e := exec.New(opts)
	if _, err := e.ExecScript(FullDDL, nil); err != nil {
		t.Fatalf("Berlin setup failed: %v", err)
	}
	return e
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{ScaleFactor: 1, Seed: 7})
	b := Generate(Config{ScaleFactor: 1, Seed: 7})
	for name, body := range a.Files {
		if b.Files[name] != body {
			t.Errorf("file %s differs between runs with the same seed", name)
		}
	}
	c := Generate(Config{ScaleFactor: 1, Seed: 8})
	if c.Files["products.csv"] == a.Files["products.csv"] {
		t.Error("different seeds produced identical products.csv")
	}
}

func TestBerlinSetupCounts(t *testing.T) {
	cfg := Config{ScaleFactor: 1, Seed: 42}
	e := engineFor(t, cfg)
	g := e.Cat.Graph()
	nProducts, nProducers, _, nTypes, _, nOffers, _, nReviews := cfg.Counts()

	checks := []struct {
		vtx  string
		want int
	}{
		{"ProductVtx", nProducts},
		{"ProducerVtx", nProducers},
		{"TypeVtx", nTypes},
		{"OfferVtx", nOffers},
		{"ReviewVtx", nReviews},
	}
	for _, c := range checks {
		vt := g.VertexType(c.vtx)
		if vt == nil {
			t.Fatalf("missing vertex type %s", c.vtx)
		}
		if vt.Count() != c.want {
			t.Errorf("%s count = %d, want %d", c.vtx, vt.Count(), c.want)
		}
	}
	// Every paper edge type exists and is populated.
	for _, en := range []string{"subclass", "producer", "type", "feature", "product", "vendor", "reviewFor", "reviewer", "export"} {
		et := g.EdgeType(en)
		if et == nil {
			t.Fatalf("missing edge type %s", en)
		}
		if et.Count() == 0 {
			t.Errorf("edge type %s is empty", en)
		}
		if err := et.Validate(); err != nil {
			t.Errorf("edge %s: %v", en, err)
		}
	}
	// Country views are many-to-one with ≤ len(Countries) instances.
	pc := g.VertexType("ProducerCountry")
	if pc.OneToOne {
		t.Error("ProducerCountry should be many-to-one")
	}
	if pc.Count() > len(Countries) {
		t.Errorf("ProducerCountry count = %d > %d countries", pc.Count(), len(Countries))
	}
}

// TestSuiteRuns executes every query of the suite at two scales and
// checks results are non-empty (the generator's shape guarantees).
func TestSuiteRuns(t *testing.T) {
	for _, sf := range []int{1, 3} {
		t.Run(fmt.Sprintf("sf=%d", sf), func(t *testing.T) { runSuite(t, sf) })
	}
}

func runSuite(t *testing.T, sf int) {
	e := engineFor(t, Config{ScaleFactor: sf, Seed: 42})
	params, err := TypedParams(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range Suite {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			res, err := e.ExecScript(q.Script, params)
			if err != nil {
				t.Fatalf("%s failed: %v", q.ID, err)
			}
			last := res[len(res)-1]
			switch {
			case last.Table != nil:
				if last.Table.NumRows() == 0 {
					t.Errorf("%s returned no rows", q.ID)
				}
			case last.Subgraph != nil:
				if last.Subgraph.NumVertices() == 0 {
					t.Errorf("%s returned an empty subgraph", q.ID)
				}
			default:
				t.Errorf("%s returned no result", q.ID)
			}
		})
	}
}

// TestQ1CrossCheck recomputes Q1 with a direct in-memory join and compares
// against the engine's answer.
func TestQ1CrossCheck(t *testing.T) {
	cfg := Config{ScaleFactor: 1, Seed: 42}
	e := engineFor(t, cfg)
	params, _ := TypedParams(DefaultParams())
	res, err := e.ExecScript(Q1.Script, params)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	tb := res[len(res)-1].Table
	for r := uint32(0); r < uint32(tb.NumRows()); r++ {
		got[tb.Value(r, 0).Str()] = tb.Value(r, 1).Int()
	}

	// Naive recomputation from the raw tables.
	cat := e.Cat
	persons := cat.Table("Persons")
	reviews := cat.Table("Reviews")
	products := cat.Table("Products")
	producers := cat.Table("Producers")
	ptypes := cat.Table("ProductTypes")

	personCountry := map[string]string{}
	for r := uint32(0); r < uint32(persons.NumRows()); r++ {
		personCountry[persons.Value(r, 0).Str()] = persons.Value(r, 4).Str()
	}
	producerCountry := map[string]string{}
	for r := uint32(0); r < uint32(producers.NumRows()); r++ {
		producerCountry[producers.Value(r, 0).Str()] = producers.Value(r, 5).Str()
	}
	productProducer := map[string]string{}
	for r := uint32(0); r < uint32(products.NumRows()); r++ {
		productProducer[products.Value(r, 0).Str()] = products.Value(r, 4).Str()
	}
	typesOf := map[string][]string{}
	for r := uint32(0); r < uint32(ptypes.NumRows()); r++ {
		p := ptypes.Value(r, 0).Str()
		typesOf[p] = append(typesOf[p], ptypes.Value(r, 1).Str())
	}
	want := map[string]int64{}
	for r := uint32(0); r < uint32(reviews.NumRows()); r++ {
		prod := reviews.Value(r, 2).Str()
		who := reviews.Value(r, 3).Str()
		if personCountry[who] != "DE" {
			continue
		}
		if producerCountry[productProducer[prod]] != "US" {
			continue
		}
		for _, ty := range typesOf[prod] {
			want[ty]++
		}
	}
	// Compare the engine's top-10 counts against the recomputation.
	for ty, n := range got {
		if want[ty] != n {
			t.Errorf("type %s: engine count %d, recomputed %d", ty, n, want[ty])
		}
	}
	if len(got) == 0 {
		t.Fatal("Q1 returned nothing")
	}
}

// TestQ8AncestorClosure cross-checks the subclass+ closure query against a
// direct transitive-ancestor walk over the Types table.
func TestQ8AncestorClosure(t *testing.T) {
	e := engineFor(t, Config{ScaleFactor: 1, Seed: 42})
	params, _ := TypedParams(DefaultParams())
	res, err := e.ExecScript(Q8.Script, params)
	if err != nil {
		t.Fatal(err)
	}
	tb := res[len(res)-1].Table
	got := map[string]bool{}
	for r := uint32(0); r < uint32(tb.NumRows()); r++ {
		got[tb.Value(r, 0).Str()] = true
	}

	cat := e.Cat
	types := cat.Table("Types")
	parent := map[string]string{}
	for r := uint32(0); r < uint32(types.NumRows()); r++ {
		parent[types.Value(r, 0).Str()] = types.Value(r, 3).Str()
	}
	ptypes := cat.Table("ProductTypes")
	want := map[string]bool{}
	for r := uint32(0); r < uint32(ptypes.NumRows()); r++ {
		if ptypes.Value(r, 0).Str() != "p1" {
			continue
		}
		ty := ptypes.Value(r, 1).Str()
		for cur := parent[ty]; cur != ""; cur = parent[cur] {
			want[cur] = true
		}
	}
	if len(got) != len(want) {
		t.Errorf("ancestors: engine %d, recomputed %d (%v vs %v)", len(got), len(want), got, want)
	}
	for ty := range want {
		if !got[ty] {
			t.Errorf("missing ancestor %s", ty)
		}
	}
}

// parseInterval parses an est_rows rendering ("42", "0..1800", "0..inf")
// into numeric bounds.
func parseInterval(t *testing.T, s string) (lo, hi float64) {
	t.Helper()
	parse := func(p string) float64 {
		if p == "inf" {
			return math.Inf(1)
		}
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			t.Fatalf("bad est_rows %q: %v", s, err)
		}
		return f
	}
	if i := strings.Index(s, ".."); i >= 0 {
		return parse(s[:i]), parse(s[i+2:])
	}
	f := parse(s)
	return f, f
}

// TestEstimateBoundsContainActuals: the static cardinality bound EXPLAIN
// ANALYZE reports on the result row must contain the actual row count for
// every statement of every Berlin query — the bounds are conservative by
// construction, and this is the suite-wide soundness check.
func TestEstimateBoundsContainActuals(t *testing.T) {
	e := engineFor(t, Config{ScaleFactor: 1, Seed: 42})
	params, err := TypedParams(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range Suite {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			// Plain run first: it registers the intermediate into-tables
			// that later statements of the script read.
			if _, err := e.ExecScript(q.Script, params); err != nil {
				t.Fatalf("%s: %v", q.ID, err)
			}
			script, err := parser.Parse(q.Script)
			if err != nil {
				t.Fatal(err)
			}
			for si, st := range script.Stmts {
				res, err := e.ExecScript("explain analyze "+st.String(), params)
				if err != nil {
					t.Fatalf("statement %d: %v", si+1, err)
				}
				tb := res[0].Table
				if tb == nil {
					t.Fatalf("statement %d: explain analyze returned no table", si+1)
				}
				found := false
				for r := uint32(0); r < uint32(tb.NumRows()); r++ {
					if tb.Value(r, 1).Str() != "result" {
						continue
					}
					found = true
					lo, hi := parseInterval(t, tb.Value(r, 3).Str())
					rows := float64(tb.Value(r, 4).Int())
					if rows < lo || rows > hi {
						t.Errorf("statement %d: actual rows %v outside est_rows [%v, %v]", si+1, rows, lo, hi)
					}
				}
				if !found {
					t.Errorf("statement %d: no result row in the plan", si+1)
				}
			}
		})
	}
}
