package plan

import (
	"math"
	"testing"
)

func TestIntervalArithmetic(t *testing.T) {
	iv := Exact(100)
	if got := iv.Filter(); got.Min != 0 || got.Max != 100 {
		t.Errorf("Filter = %+v, want [0,100]", got)
	}
	if got := iv.Expand(3); got.Min != 0 || got.Max != 300 {
		t.Errorf("Expand(3) = %+v, want [0,300]", got)
	}
	if got := Exact(0).Expand(math.Inf(1)); got.Max != 0 {
		t.Errorf("zero rows with unbounded fan-out = %+v, want [0,0]", got)
	}
	if got := Exact(4).Cross(Exact(5)); got.Min != 20 || got.Max != 20 {
		t.Errorf("Cross = %+v, want [20,20]", got)
	}
	if got := Exact(4).Add(UpTo(5)); got.Min != 4 || got.Max != 9 {
		t.Errorf("Add = %+v, want [4,9]", got)
	}
	if got := Exact(4).Alt(Exact(5)); got.Min != 0 || got.Max != 9 {
		t.Errorf("Alt = %+v, want [0,9]", got)
	}
	if got := Exact(40).Group(); got.Min != 1 || got.Max != 40 {
		t.Errorf("Group = %+v, want [1,40]", got)
	}
	if got := UpTo(40).Distinct(); got.Min != 0 || got.Max != 40 {
		t.Errorf("Distinct of [0,40] = %+v, want [0,40]", got)
	}
	if got := Exact(100).Top(10); got.Min != 10 || got.Max != 10 {
		t.Errorf("Top(10) = %+v, want [10,10]", got)
	}
	if got := UpTo(3).Top(10); got.Min != 0 || got.Max != 3 {
		t.Errorf("Top(10) of [0,3] = %+v, want [0,3]", got)
	}
}

func TestIntervalContains(t *testing.T) {
	iv := UpTo(10)
	for _, n := range []float64{0, 5, 10} {
		if !iv.Contains(n) {
			t.Errorf("[0,10] should contain %v", n)
		}
	}
	if iv.Contains(11) {
		t.Error("[0,10] should not contain 11")
	}
	if !Unbounded().Contains(1e18) {
		t.Error("unbounded interval should contain any count")
	}
}

func TestIntervalString(t *testing.T) {
	cases := []struct {
		iv   Interval
		want string
	}{
		{Exact(42), "42"},
		{UpTo(1800), "0..1800"},
		{Unbounded(), "0..inf"},
		{Interval{Min: 1, Max: math.Inf(1)}, "1..inf"},
		{Exact(0), "0"},
	}
	for _, c := range cases {
		if got := c.iv.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.iv, got, c.want)
		}
	}
}
