// Package plan implements GEMS's dynamic query planning (paper §III-B):
// choosing the order and direction in which a path query traverses the
// bidirectional edge indexes, using the catalog's size and degree
// statistics; and the multi-statement dependence analysis that lets
// independent statements of a GraQL script run in parallel (§III-B1).
package plan

import (
	"math"

	"graql/internal/sema"
)

// Estimator supplies the dynamic statistics the planner consumes. The
// execution engine implements it over the catalog and the current variant
// typing.
type Estimator interface {
	// NodeCount estimates the candidate cardinality of a pattern node
	// after its step condition.
	NodeCount(node int) float64
	// EdgeFanout estimates the expansion factor of traversing pattern
	// edge e: per bound source vertex when forward (src→dst), per bound
	// target vertex when backward.
	EdgeFanout(edge int, forward bool) float64
	// CanTraverse reports whether the edge can be traversed in the given
	// direction with an index (a missing reverse index disables backward
	// traversal, §III-B).
	CanTraverse(edge int, forward bool) bool
}

// Visit is one step of a join/traversal order: bind Node by traversing
// pattern edge Via from its already-bound endpoint (Forward = from the
// edge's source to its target). Via -1 starts a new component by scanning
// Node's candidates.
type Visit struct {
	Node    int
	Via     int
	Forward bool
}

// Order computes a greedy cost-based visit order for a pattern: start at
// the node with the smallest estimated candidate set, then repeatedly bind
// the cheapest reachable unbound node, preferring index directions that
// exist and minimising the estimated intermediate cardinality — the
// paper's "series of decisions on which order to traverse the edge
// indexes" (§III-B).
func Order(pat *sema.Pattern, est Estimator) []Visit {
	n := len(pat.Nodes)
	bound := make([]bool, n)
	order := make([]Visit, 0, n)

	for len(order) < n {
		// Start (or restart, for safety on disconnected inputs) at the
		// cheapest unbound node.
		if len(order) == 0 || !anyReachable(pat, bound) {
			best, bestCard := -1, math.Inf(1)
			for i := 0; i < n; i++ {
				if bound[i] {
					continue
				}
				if c := est.NodeCount(i); c < bestCard {
					best, bestCard = i, c
				}
			}
			order = append(order, Visit{Node: best, Via: -1})
			bound[best] = true
			continue
		}
		// Cheapest expansion from the bound frontier.
		bestVisit := Visit{Node: -1}
		bestCost := math.Inf(1)
		for _, e := range pat.Edges {
			var node int
			var fwd bool
			switch {
			case bound[e.Src] && !bound[e.Dst]:
				node, fwd = e.Dst, true
			case bound[e.Dst] && !bound[e.Src]:
				node, fwd = e.Src, false
			default:
				continue
			}
			cost := est.EdgeFanout(e.ID, fwd) * nodeSelectivity(est, node)
			if !est.CanTraverse(e.ID, fwd) {
				// Traversal without an index degrades to an edge scan;
				// strongly discourage but keep feasible.
				cost *= 1e6
			}
			if cost < bestCost {
				bestCost = cost
				bestVisit = Visit{Node: node, Via: e.ID, Forward: fwd}
			}
		}
		order = append(order, bestVisit)
		bound[bestVisit.Node] = true
	}
	return order
}

// nodeSelectivity scales fan-out by how selective the target node's own
// condition is, approximated by comparing its filtered estimate with a
// plain scan of the type.
func nodeSelectivity(est Estimator, node int) float64 {
	c := est.NodeCount(node)
	if c <= 0 {
		return 1e-9
	}
	return c / (c + 1) // monotone damping; detailed stats live in NodeCount
}

func anyReachable(pat *sema.Pattern, bound []bool) bool {
	for _, e := range pat.Edges {
		if bound[e.Src] != bound[e.Dst] {
			return true
		}
	}
	return false
}

// LinearChain reports whether the pattern is a simple open chain (every
// node incident to at most two pattern edges, no cycles) and returns the
// node ids in chain order. Chains qualify for the bitmap
// forward-expansion / backward-culling evaluation of Eq. 5.
func LinearChain(pat *sema.Pattern) ([]int, bool) {
	n := len(pat.Nodes)
	if n == 0 {
		return nil, false
	}
	if len(pat.Edges) != n-1 {
		return nil, false
	}
	adj := make([][]int, n) // adjacent edge ids
	for _, e := range pat.Edges {
		if e.Src == e.Dst {
			return nil, false // self-loop (foreach cycle)
		}
		adj[e.Src] = append(adj[e.Src], e.ID)
		adj[e.Dst] = append(adj[e.Dst], e.ID)
	}
	start := -1
	for i, a := range adj {
		if len(a) > 2 {
			return nil, false
		}
		if len(a) <= 1 {
			if len(a) == 1 || n == 1 {
				if start < 0 {
					start = i
				}
			} else {
				return nil, false // isolated node in a multi-node pattern
			}
		}
	}
	if start < 0 {
		return nil, false // cycle
	}
	chain := []int{start}
	prevEdge := -1
	cur := start
	for len(chain) < n {
		next := -1
		for _, eid := range adj[cur] {
			if eid == prevEdge {
				continue
			}
			e := pat.Edges[eid]
			other := e.Src
			if other == cur {
				other = e.Dst
			}
			next = other
			prevEdge = eid
			break
		}
		if next < 0 {
			return nil, false
		}
		chain = append(chain, next)
		cur = next
	}
	return chain, true
}
