package plan

import (
	"testing"

	"graql/internal/parser"
	"graql/internal/sema"
)

// fakeEst is a hand-tuned estimator for order tests.
type fakeEst struct {
	counts  []float64
	fanout  map[[2]interface{}]float64
	noRev   map[int]bool
	fanDflt float64
}

func (f *fakeEst) NodeCount(n int) float64 { return f.counts[n] }
func (f *fakeEst) EdgeFanout(e int, fwd bool) float64 {
	if v, ok := f.fanout[[2]interface{}{e, fwd}]; ok {
		return v
	}
	if f.fanDflt > 0 {
		return f.fanDflt
	}
	return 1
}
func (f *fakeEst) CanTraverse(e int, fwd bool) bool { return fwd || !f.noRev[e] }

// chain builds the pattern for V0 -e0-> V1 -e1-> V2 ... (all edges
// forward).
func chainPattern(n int) *sema.Pattern {
	p := &sema.Pattern{}
	for i := 0; i < n; i++ {
		p.Nodes = append(p.Nodes, &sema.Node{ID: i, SameTypeAs: -1})
	}
	for i := 0; i+1 < n; i++ {
		p.Edges = append(p.Edges, &sema.PEdge{ID: i, Src: i, Dst: i + 1})
	}
	return p
}

func TestOrderVisitsEveryNodeOnce(t *testing.T) {
	pat := chainPattern(5)
	est := &fakeEst{counts: []float64{100, 100, 1, 100, 100}, fanDflt: 3}
	order := Order(pat, est)
	if len(order) != 5 {
		t.Fatalf("order length = %d", len(order))
	}
	seen := map[int]bool{}
	for i, v := range order {
		if seen[v.Node] {
			t.Fatalf("node %d visited twice", v.Node)
		}
		seen[v.Node] = true
		if i == 0 {
			if v.Via != -1 {
				t.Error("first visit must scan")
			}
			if v.Node != 2 {
				t.Errorf("should start at the most selective node 2, got %d", v.Node)
			}
			continue
		}
		if v.Via < 0 {
			t.Errorf("visit %d disconnected", i)
		}
		// Via edge must connect to an already-bound node.
		e := pat.Edges[v.Via]
		from := e.Src
		if v.Forward {
			if e.Dst != v.Node {
				t.Errorf("forward via edge %d does not reach node %d", v.Via, v.Node)
			}
		} else {
			from = e.Dst
			if e.Src != v.Node {
				t.Errorf("backward via edge %d does not reach node %d", v.Via, v.Node)
			}
		}
		if !seen[from] {
			// seen already includes v.Node; from must have been bound
			// before this visit.
			t.Errorf("visit %d traverses from unbound node %d", i, from)
		}
	}
}

// TestOrderPrefersSelectiveEnd: with a highly selective filter at the far
// end, the planner must start there and traverse backwards over reverse
// indexes — the motivation for GEMS's bidirectional indexes (§III-B).
func TestOrderPrefersSelectiveEnd(t *testing.T) {
	pat := chainPattern(3)
	est := &fakeEst{counts: []float64{10000, 5000, 1}, fanDflt: 10}
	order := Order(pat, est)
	if order[0].Node != 2 {
		t.Fatalf("should start at node 2, got %d", order[0].Node)
	}
	if order[1].Forward {
		t.Error("second visit should traverse a reverse index (backward)")
	}
}

// Without reverse indexes, backward traversal is heavily penalised, so
// the plan works forward from the selective start even when the end is
// smaller.
func TestOrderAvoidsMissingReverseIndex(t *testing.T) {
	pat := chainPattern(2)
	est := &fakeEst{
		counts: []float64{50, 10},
		noRev:  map[int]bool{0: true},
		fanout: map[[2]interface{}]float64{
			{0, true}:  2,
			{0, false}: 2,
		},
	}
	order := Order(pat, est)
	if order[0].Node != 1 {
		t.Fatalf("start = %d, want 1 (smaller)", order[0].Node)
	}
	// Reaching node 0 from node 1 means traversing edge 0 backwards —
	// allowed (edge scan) but penalised; with both directions equally
	// cheap otherwise, the planner still has no alternative here, so it
	// must produce a complete order.
	if len(order) != 2 || order[1].Node != 0 {
		t.Fatal("incomplete order")
	}
}

func TestLinearChainDetection(t *testing.T) {
	if chain, ok := LinearChain(chainPattern(4)); !ok || len(chain) != 4 {
		t.Errorf("4-chain not detected: %v %v", chain, ok)
	}
	if _, ok := LinearChain(chainPattern(1)); !ok {
		t.Error("single node is a chain")
	}
	// Cycle: add an edge closing the loop.
	cyc := chainPattern(3)
	cyc.Edges = append(cyc.Edges, &sema.PEdge{ID: 2, Src: 2, Dst: 0})
	if _, ok := LinearChain(cyc); ok {
		t.Error("cycle must not be a chain")
	}
	// Branch: star with a 3-degree centre.
	star := chainPattern(3)
	star.Nodes = append(star.Nodes, &sema.Node{ID: 3, SameTypeAs: -1})
	star.Edges = append(star.Edges, &sema.PEdge{ID: 2, Src: 1, Dst: 3})
	if _, ok := LinearChain(star); ok {
		t.Error("star must not be a chain")
	}
	// Self-loop (foreach cycle).
	loop := chainPattern(2)
	loop.Edges[0].Dst = 0
	loop.Edges[0].Src = 0
	if _, ok := LinearChain(loop); ok {
		t.Error("self-loop must not be a chain")
	}
}

func TestDependenciesAndStages(t *testing.T) {
	script, err := parser.Parse(`
create table A(x integer)
ingest table A a.csv
select x from table A into table RA
select x from table A into table RB
select x from table RA
select x from table RB
`)
	if err != nil {
		t.Fatal(err)
	}
	deps := Dependencies(script)
	// Statement 4 (select from RA) must depend on statement 2 (into RA).
	found := false
	for _, d := range deps[4] {
		if d == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("stmt 5 should depend on stmt 3; deps = %v", deps[4])
	}
	stages := Stages(script)
	level := map[int]int{}
	for l, st := range stages {
		for _, i := range st {
			level[i] = l
		}
	}
	// The two independent producing selects (2 and 3) share a stage, as
	// do their two consumers (4 and 5).
	if level[2] != level[3] {
		t.Errorf("independent selects at levels %d and %d", level[2], level[3])
	}
	if level[4] != level[5] || level[4] <= level[2] {
		t.Errorf("consumers at levels %d/%d after producers %d", level[4], level[5], level[2])
	}
	// Ingest follows the create (table write-write conflict).
	if level[1] <= level[0] {
		t.Errorf("ingest at level %d must follow create at %d", level[1], level[0])
	}
}

func TestGraphQueryFootprint(t *testing.T) {
	script, err := parser.Parse(`
create table A(x integer)
create vertex V(x) from table A
select * from graph V ( ) into subgraph s1
select * from graph s1.V ( ) into subgraph s2
`)
	if err != nil {
		t.Fatal(err)
	}
	deps := Dependencies(script)
	// The seeded query must wait for the subgraph it reads.
	found := false
	for _, d := range deps[3] {
		if d == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("seeded query should depend on producer; deps = %v", deps[3])
	}
}
