package plan

import (
	"strings"

	"graql/internal/ast"
)

// This file implements multi-statement GraQL scheduling (paper §III-B1):
// given a script Ω = q1 … qn and the explicit inputs/outputs expressed by
// "into table" / "into subgraph" clauses, build a dependence DAG and derive
// stages of statements that may execute in parallel.

// rwSet is the read/write footprint of one statement, over lower-cased
// object names plus the pseudo-object "#graph" (the view layer) and
// "#catalog" (DDL structure).
type rwSet struct {
	reads  map[string]bool
	writes map[string]bool
}

func newRW() rwSet {
	return rwSet{reads: map[string]bool{}, writes: map[string]bool{}}
}

func (s rwSet) read(name string)  { s.reads[strings.ToLower(name)] = true }
func (s rwSet) write(name string) { s.writes[strings.ToLower(name)] = true }

func footprint(st ast.Stmt) rwSet {
	s := newRW()
	switch q := st.(type) {
	case *ast.CreateTable:
		s.write("#catalog")
		s.write(q.Name)
	case *ast.CreateVertex:
		s.write("#catalog")
		s.write("#graph")
		s.read(q.From)
	case *ast.CreateEdge:
		s.write("#catalog")
		s.write("#graph")
		for _, t := range q.FromTables {
			s.read(t)
		}
	case *ast.Ingest:
		s.write(q.Table)
		s.write("#graph") // ingest regenerates derived views (§II-A2)
		s.read("#catalog")
	case *ast.Output:
		s.read(q.Table)
		s.read("#catalog")
	case *ast.Insert:
		s.write(q.Table)
		s.write("#graph") // mutations maintain derived views incrementally
		s.read("#catalog")
	case *ast.Update:
		s.write(q.Table)
		s.write("#graph")
		s.read("#catalog")
	case *ast.Delete:
		s.write(q.Table)
		s.write("#graph")
		s.read("#catalog")
	case *ast.Select:
		if q.Graph != nil {
			s.read("#graph")
			for _, term := range q.Graph.Terms {
				for _, p := range term.Paths {
					for _, el := range p.Elems {
						if v, ok := el.(*ast.VertexStep); ok && v.SeedGraph != "" {
							s.read(v.SeedGraph)
						}
					}
				}
			}
		} else {
			s.read(q.FromTable)
		}
		s.read("#catalog")
		if q.Into.Kind != ast.IntoNone {
			s.write(q.Into.Name)
		}
	}
	return s
}

func conflicts(a, b rwSet) bool {
	for w := range a.writes {
		if b.reads[w] || b.writes[w] {
			return true
		}
	}
	for w := range b.writes {
		if a.reads[w] {
			return true
		}
	}
	return false
}

// Dependencies returns, for each statement, the indexes of earlier
// statements it must wait for (write→read, read→write and write→write
// conflicts on tables, subgraphs, the view layer and the catalog).
func Dependencies(script *ast.Script) [][]int {
	fps := make([]rwSet, len(script.Stmts))
	for i, st := range script.Stmts {
		fps[i] = footprint(st)
	}
	deps := make([][]int, len(script.Stmts))
	for i := range script.Stmts {
		for j := 0; j < i; j++ {
			if conflicts(fps[j], fps[i]) {
				deps[i] = append(deps[i], j)
			}
		}
	}
	return deps
}

// Stages groups statement indexes into topological levels: every
// statement in stage k depends only on statements in stages < k, so the
// members of one stage can execute concurrently (§III-B1). Statement
// order within a stage follows script order.
func Stages(script *ast.Script) [][]int {
	deps := Dependencies(script)
	level := make([]int, len(deps))
	maxLevel := 0
	for i := range deps {
		l := 0
		for _, d := range deps[i] {
			if level[d]+1 > l {
				l = level[d] + 1
			}
		}
		level[i] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	stages := make([][]int, maxLevel+1)
	for i, l := range level {
		stages[l] = append(stages[l], i)
	}
	return stages
}
