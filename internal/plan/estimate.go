package plan

import (
	"math"
	"strconv"
)

// Interval is a static cardinality bound: the row count of a plan step
// provably lies in [Min, Max] given the catalog statistics the bound was
// computed from. Max = +Inf marks a step whose output the analysis
// cannot bound (an unbounded path-regular expression, a variant
// expansion over unknown types). The arithmetic below is deliberately
// conservative — a filter may drop everything, an expansion multiplies
// by the observed maximum degree — so the bounds are sound: the actual
// row count of an execution over the same catalog snapshot always falls
// inside the interval (EXPLAIN renders them as est_rows, and the Berlin
// suite asserts containment for every query).
type Interval struct {
	Min, Max float64
}

// Exact returns the degenerate interval [n, n].
func Exact(n float64) Interval { return Interval{Min: n, Max: n} }

// UpTo returns [0, n]: a step that can drop any subset of n rows.
func UpTo(n float64) Interval { return Interval{Min: 0, Max: n} }

// Unbounded returns [0, +Inf): no static bound exists.
func Unbounded() Interval { return Interval{Min: 0, Max: math.Inf(1)} }

// mul multiplies bounds, treating 0 × Inf as 0 (zero rows expanded by an
// unbounded fan-out are still zero rows).
func mul(a, b float64) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a * b
}

// Filter bounds the output of a predicate: it can drop any subset of its
// input and never adds rows.
func (iv Interval) Filter() Interval { return Interval{Min: 0, Max: iv.Max} }

// Expand bounds one traversal step: every input row fans out into at
// most maxFan successors (and possibly none, so the lower bound drops
// to zero).
func (iv Interval) Expand(maxFan float64) Interval {
	return Interval{Min: 0, Max: mul(iv.Max, maxFan)}
}

// Cross bounds the cartesian combination of two independent inputs
// (disconnected pattern components bind independently).
func (iv Interval) Cross(o Interval) Interval {
	return Interval{Min: mul(iv.Min, o.Min), Max: mul(iv.Max, o.Max)}
}

// Add sums two disjoint inputs (the concrete typings a variant pattern
// expands into produce disjoint binding sets).
func (iv Interval) Add(o Interval) Interval {
	return Interval{Min: iv.Min + o.Min, Max: iv.Max + o.Max}
}

// Alt bounds an or-composition alternative joined to this one: the union
// may deduplicate rows the alternatives share, so only the upper bounds
// accumulate.
func (iv Interval) Alt(o Interval) Interval {
	return Interval{Min: 0, Max: iv.Max + o.Max}
}

// Group bounds a group-by: at most one output row per input row, at
// least one whenever any input row exists.
func (iv Interval) Group() Interval {
	if iv.Min > 1 {
		iv.Min = 1
	}
	return iv
}

// Distinct bounds duplicate elimination — the same shape as Group.
func (iv Interval) Distinct() Interval { return iv.Group() }

// Top clamps both bounds to the first-k limit.
func (iv Interval) Top(k int) Interval {
	if f := float64(k); k >= 0 {
		iv.Min = math.Min(iv.Min, f)
		iv.Max = math.Min(iv.Max, f)
	}
	return iv
}

// Contains reports whether an observed row count falls inside the bound.
func (iv Interval) Contains(rows float64) bool {
	return rows >= iv.Min && rows <= iv.Max
}

// String renders the bound for EXPLAIN's est_rows column: "42" for an
// exact bound, "0..1800" for a range, "0..inf" for an unbounded step.
func (iv Interval) String() string {
	if iv.Min == iv.Max {
		return formatBound(iv.Min)
	}
	return formatBound(iv.Min) + ".." + formatBound(iv.Max)
}

func formatBound(f float64) string {
	if math.IsInf(f, 1) {
		return "inf"
	}
	// Bounds are products of counts and degrees: integral by
	// construction, but huge products lose integer precision, so render
	// compactly instead of forcing %d.
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', 0, 64)
	}
	return strconv.FormatFloat(f, 'g', 3, 64)
}
