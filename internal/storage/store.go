package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"graql/internal/obs"
)

// File names inside a data directory.
const (
	walFile  = "wal.gqw"
	snapFile = "snapshot.gqs"
)

// Store is an open data directory: one WAL file plus at most one snapshot.
// Append is safe for concurrent use, though the engine already serialises
// writers through the catalog's writer mutex.
type Store struct {
	dir   string
	fsync bool

	mu       sync.Mutex
	f        *os.File
	lastSeq  uint64
	snapSeq  uint64
	walBytes int64
	walTail  []byte // valid WAL contents read at open; freed after Replay

	fsyncHist   *obs.Histogram
	walBytesCtr *obs.Counter
	walRecords  *obs.Counter
	checkpoints *obs.Counter
}

// Open opens (creating if needed) the data directory. fsync controls
// whether every WAL append is flushed to stable storage before the write
// is acknowledged ("always" durability) or left to the OS ("off"). reg,
// when non-nil, receives WAL metrics: fsync latency, appended bytes and
// records, checkpoint count.
func Open(dir string, fsync bool, reg *obs.Registry) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("graql: storage: %w", err)
	}
	s := &Store{dir: dir, fsync: fsync}
	if reg != nil {
		s.fsyncHist = reg.Histogram("graql_wal_fsync_seconds",
			"WAL fsync latency per committed record.", obs.LatencyBuckets())
		s.walBytesCtr = reg.Counter("graql_wal_appended_bytes_total",
			"Bytes appended to the write-ahead log.")
		s.walRecords = reg.Counter("graql_wal_records_total",
			"Records appended to the write-ahead log.")
		s.checkpoints = reg.Counter("graql_checkpoints_total",
			"Snapshots written (WAL truncations).")
	}

	// The snapshot header carries the sequence number it covers; WAL
	// records at or below it are already folded in.
	if snap, err := s.readSnapshotHeader(); err != nil {
		return nil, err
	} else {
		s.snapSeq = snap
		s.lastSeq = snap
	}

	// Scan the WAL once to find the last good frame; a torn tail (partial
	// final write from a crash) is truncated away so appends restart at a
	// clean frame boundary.
	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("graql: storage: %w", err)
	}
	validLen, err := ScanFrames(data, func(rec *Record) error {
		if rec.Seq > s.lastSeq {
			s.lastSeq = rec.Seq
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("graql: storage: %s: %w", walFile, err)
	}
	s.walTail = data[:validLen]
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("graql: storage: %w", err)
	}
	if err := f.Truncate(int64(validLen)); err != nil {
		f.Close()
		return nil, fmt.Errorf("graql: storage: %w", err)
	}
	if _, err := f.Seek(int64(validLen), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("graql: storage: %w", err)
	}
	s.f = f
	s.walBytes = int64(validLen)
	return s, nil
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// LastSeq returns the sequence number of the last durable record (or the
// snapshot's, when the WAL is empty).
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// WALSize returns the current WAL file size in bytes.
func (s *Store) WALSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walBytes
}

// Append assigns the next sequence number to rec, frames it, appends it to
// the WAL and (per the fsync policy) flushes it to stable storage. The
// record is durable when Append returns without error; the returned count
// is the framed size in bytes (callers attribute WAL volume to the
// statement that produced it).
func (s *Store) Append(rec *Record) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec.Seq = s.lastSeq + 1
	payload, err := encodePayload(rec)
	if err != nil {
		return 0, err
	}
	frame := encodeFrame(payload)
	if _, err := s.f.Write(frame); err != nil {
		return 0, fmt.Errorf("graql: wal append: %w", err)
	}
	if s.fsync {
		start := time.Now()
		if err := s.f.Sync(); err != nil {
			return 0, fmt.Errorf("graql: wal fsync: %w", err)
		}
		if s.fsyncHist != nil {
			s.fsyncHist.Observe(time.Since(start).Seconds())
		}
	}
	s.lastSeq = rec.Seq
	s.walBytes += int64(len(frame))
	if s.walBytesCtr != nil {
		s.walBytesCtr.Add(int64(len(frame)))
		s.walRecords.Inc()
	}
	return len(frame), nil
}

// Replay invokes fn for every WAL record newer than the snapshot, in log
// order, then frees the buffered log tail. Call once, after Open and
// LoadSnapshot, before any Append.
func (s *Store) Replay(fn func(*Record) error) error {
	s.mu.Lock()
	tail := s.walTail
	snapSeq := s.snapSeq
	s.walTail = nil
	s.mu.Unlock()
	_, err := ScanFrames(tail, func(rec *Record) error {
		if rec.Seq <= snapSeq {
			return nil // already folded into the snapshot
		}
		return fn(rec)
	})
	return err
}

// Close closes the WAL file. It does not checkpoint; callers that want a
// compact restart write a snapshot first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
