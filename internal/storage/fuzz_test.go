package storage

import (
	"testing"

	"graql/internal/table"
	"graql/internal/value"
)

// FuzzWALDecode: arbitrary bytes must never panic the WAL frame scanner
// or the record decoder. Truncated or bit-flipped input yields a shorter
// valid prefix (or a decode error), never a crash — this is the property
// crash recovery relies on when it reads back a torn log.
func FuzzWALDecode(f *testing.F) {
	// Seed with well-formed frames of both record kinds.
	tb, err := table.New("t", table.Schema{
		{Name: "id", Type: value.Int},
		{Name: "s", Type: value.Varchar(8)},
	})
	if err != nil {
		f.Fatal(err)
	}
	tb.AppendRow([]value.Value{value.NewInt(1), value.NewString("x")})
	tb.AppendRow([]value.Value{value.NewInt(2), value.NewNull(value.KindString)})
	seeds := []*Record{
		{Seq: 1, Kind: KindStmt, IR: []byte{1, 2, 3, 4}},
		{Seq: 2, Kind: KindStmt, IR: []byte("stmt"), Params: map[string]value.Value{
			"a": value.NewInt(-9), "b": value.NewFloat(1.5), "c": value.NewBool(true),
		}},
		{Seq: 3, Kind: KindTableLoad, Load: &TableLoad{Register: true, Table: tb}},
	}
	var log []byte
	for _, rec := range seeds {
		payload, err := encodePayload(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
		frame := encodeFrame(payload)
		f.Add(frame)
		log = append(log, frame...)
	}
	f.Add(log)
	f.Add(log[:len(log)-3])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		n := 0
		validLen, err := ScanFrames(data, func(*Record) error { n++; return nil })
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("validLen %d out of range [0,%d]", validLen, len(data))
		}
		if err == nil {
			// A clean scan must be idempotent over its valid prefix.
			m := 0
			revalid, rerr := ScanFrames(data[:validLen], func(*Record) error { m++; return nil })
			if rerr != nil || revalid != validLen || m != n {
				t.Fatalf("rescan of valid prefix diverged: len %d→%d, records %d→%d, err %v",
					validLen, revalid, n, m, rerr)
			}
		}
		// The payload decoder alone must not panic either.
		DecodePayload(data)
	})
}
