package storage

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"graql/internal/table"
	"graql/internal/value"
)

func testTable(t *testing.T, name string, n int) *table.Table {
	t.Helper()
	tb, err := table.New(name, table.Schema{
		{Name: "id", Type: value.Int},
		{Name: "name", Type: value.Varchar(10)},
		{Name: "score", Type: value.Float},
		{Name: "ok", Type: value.Bool},
		{Name: "d", Type: value.Date},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		vals := []value.Value{
			value.NewInt(int64(i)),
			value.NewString("n" + string(rune('a'+i%26))),
			value.NewFloat(float64(i) * 1.5),
			value.NewBool(i%2 == 0),
			value.NewDate(int64(19000 + i)),
		}
		if i%7 == 3 {
			vals[1] = value.NewNull(value.KindString)
		}
		if err := tb.AppendRow(vals); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func tablesEqual(a, b *table.Table) bool {
	if a.Name != b.Name || a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return false
	}
	if !reflect.DeepEqual(a.Schema(), b.Schema()) {
		return false
	}
	for r := uint32(0); r < uint32(a.NumRows()); r++ {
		for c := 0; c < a.NumCols(); c++ {
			if !a.Value(r, c).IsNull() || !b.Value(r, c).IsNull() {
				if a.Value(r, c).IsNull() != b.Value(r, c).IsNull() {
					return false
				}
				if !a.Value(r, c).IsNull() && !value.Equal(a.Value(r, c), b.Value(r, c)) {
					return false
				}
			}
		}
	}
	return true
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		{Kind: KindStmt, IR: []byte{1, 2, 3}, Params: map[string]value.Value{"x": value.NewInt(7)}},
		{Kind: KindTableLoad, Load: &TableLoad{Register: true, Table: testTable(t, "T", 13)}},
		{Kind: KindStmt, IR: []byte{9}},
	}
	for _, r := range recs {
		if _, err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if st.LastSeq() != 3 {
		t.Errorf("LastSeq = %d, want 3", st.LastSeq())
	}
	st.Close()

	st2, err := Open(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var got []*Record
	if err := st2.Replay(func(r *Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	if got[0].Seq != 1 || got[0].Kind != KindStmt || string(got[0].IR) != string([]byte{1, 2, 3}) {
		t.Errorf("record 0 = %+v", got[0])
	}
	if !value.Equal(got[0].Params["x"], value.NewInt(7)) {
		t.Errorf("params = %v", got[0].Params)
	}
	if got[1].Kind != KindTableLoad || !got[1].Load.Register || !tablesEqual(got[1].Load.Table, recs[1].Load.Table) {
		t.Errorf("table-load record did not round-trip")
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Append(&Record{Kind: KindStmt, IR: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append a partial frame.
	if err := os.WriteFile(path, append(data, 0xFF, 0x01, 0x02), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, true, nil)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	n := 0
	if err := st2.Replay(func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("replayed %d records after torn tail, want 3", n)
	}
	// The torn bytes are gone: the next append lands on a clean boundary.
	if _, err := st2.Append(&Record{Kind: KindStmt, IR: []byte{42}}); err != nil {
		t.Fatal(err)
	}
	if st2.LastSeq() != 4 {
		t.Errorf("LastSeq = %d, want 4", st2.LastSeq())
	}
	st2.Close()

	st3, err := Open(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	n = 0
	if err := st3.Replay(func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("replayed %d records, want 4", n)
	}
}

func TestWALBitFlipStopsReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Append(&Record{Kind: KindStmt, IR: []byte{byte(i), byte(i), byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	path := filepath.Join(dir, walFile)
	data, _ := os.ReadFile(path)
	// Flip one payload bit in the middle record.
	data[len(data)/2] ^= 0x10
	os.WriteFile(path, data, 0o644)

	st2, err := Open(dir, true, nil)
	if err != nil {
		t.Fatalf("open with bit flip: %v", err)
	}
	defer st2.Close()
	n := 0
	if err := st2.Replay(func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n >= 3 {
		t.Errorf("replayed %d records past a bit flip", n)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := st.Append(&Record{Kind: KindStmt, IR: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	snap := &Snapshot{
		Tables: []*table.Table{testTable(t, "A", 9), testTable(t, "B", 0)},
		DeclIR: []byte{7, 7, 7},
	}
	if err := st.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if st.WALSize() != 0 {
		t.Errorf("WAL not truncated after snapshot: %d bytes", st.WALSize())
	}
	// Sequence numbers keep rising across the truncation.
	if _, err := st.Append(&Record{Kind: KindStmt, IR: []byte{99}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 5 {
		t.Errorf("snapshot seq = %d, want 5", got.Seq)
	}
	if len(got.Tables) != 2 || !tablesEqual(got.Tables[0], snap.Tables[0]) || !tablesEqual(got.Tables[1], snap.Tables[1]) {
		t.Error("snapshot tables did not round-trip")
	}
	if string(got.DeclIR) != string([]byte{7, 7, 7}) {
		t.Errorf("DeclIR = %v", got.DeclIR)
	}
	var seqs []uint64
	if err := st2.Replay(func(r *Record) error { seqs = append(seqs, r.Seq); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqs, []uint64{6}) {
		t.Errorf("replayed seqs = %v, want [6]", seqs)
	}
	if st2.LastSeq() != 6 {
		t.Errorf("LastSeq = %d, want 6", st2.LastSeq())
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(&Snapshot{Tables: []*table.Table{testTable(t, "A", 4)}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	path := filepath.Join(dir, snapFile)
	data, _ := os.ReadFile(path)
	data[len(data)-2] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if _, err := Open(dir, true, nil); err == nil {
		t.Error("corrupt snapshot not detected at open")
	}
}
