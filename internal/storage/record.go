// Package storage implements the durability layer: a length-prefixed,
// CRC-checked append-only write-ahead log (one record per committed
// statement batch), periodic compact snapshots of the catalog state, and
// crash-recovery replay (snapshot restore followed by the WAL tail).
//
// The WAL frame layout is
//
//	[u32 payloadLen][u32 crc32(payload)][payload]
//
// with both integers little-endian. The payload is
//
//	uvarint seq | u8 kind | body
//
// where kind 1 carries a binary-IR-encoded statement plus its parameter
// bindings (replayed through the engine) and kind 2 carries materialised
// table rows (an ingest swap or a select-into result registration). A
// torn final frame — short header, short payload, or CRC mismatch — marks
// the end of the recoverable log; everything before it replays, everything
// from it on is discarded.
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"graql/internal/table"
	"graql/internal/value"
)

// Record kinds.
const (
	// KindStmt is a binary-IR statement plus parameter bindings.
	KindStmt byte = 1
	// KindTableLoad is a materialised table (ingest swap or select-into
	// result registration).
	KindTableLoad byte = 2
)

// frameHeader is the fixed per-record prefix: payload length + CRC.
const frameHeader = 8

// Record is one WAL entry.
type Record struct {
	Seq  uint64
	Kind byte

	// KindStmt fields.
	IR     []byte
	Params map[string]value.Value

	// KindTableLoad field.
	Load *TableLoad
}

// TableLoad is the body of a KindTableLoad record: a complete new version
// of a table.
type TableLoad struct {
	// Register is true for a select-into result (register/replace, no view
	// rebuild) and false for an ingest-style swap (rebuild derived views).
	Register bool
	Table    *table.Table
}

// --- byte writer -----------------------------------------------------------

type bwriter struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

func (w *bwriter) u8(b byte)    { w.buf = append(w.buf, b) }
func (w *bwriter) bool_(b bool) { w.u8(map[bool]byte{false: 0, true: 1}[b]) }
func (w *bwriter) raw(p []byte) { w.buf = append(w.buf, p...) }
func (w *bwriter) uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}
func (w *bwriter) varint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

func (w *bwriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *bwriter) bytes(p []byte) {
	w.uvarint(uint64(len(p)))
	w.raw(p)
}

func (w *bwriter) value(v value.Value) {
	w.u8(byte(v.Kind()))
	w.bool_(v.IsNull())
	if v.IsNull() {
		return
	}
	switch v.Kind() {
	case value.KindBool:
		w.bool_(v.Bool())
	case value.KindInt, value.KindDate:
		w.varint(v.Int())
	case value.KindFloat:
		w.uvarint(math.Float64bits(v.Float()))
	case value.KindString:
		w.str(v.Str())
	}
}

// --- byte reader -----------------------------------------------------------

// breader is an error-latching reader over a byte slice: the first decode
// error sticks and every later read returns a zero value, so decoders can
// run straight-line and check err once.
type breader struct {
	buf []byte
	off int
	err error
}

func (r *breader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("graql: wal: "+format, args...)
	}
}

func (r *breader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("truncated record")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *breader) bool_() bool { return r.u8() != 0 }

func (r *breader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *breader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

func (r *breader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("string length %d exceeds record", n)
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *breader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("byte-slice length %d exceeds record", n)
		return nil
	}
	p := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

func validKind(k value.Kind) bool {
	switch k {
	case value.KindBool, value.KindInt, value.KindDate, value.KindFloat, value.KindString:
		return true
	}
	return false
}

func (r *breader) value() value.Value {
	k := value.Kind(r.u8())
	null := r.bool_()
	if r.err != nil {
		return value.Value{}
	}
	if !validKind(k) {
		r.fail("unknown value kind %d", k)
		return value.Value{}
	}
	if null {
		return value.NewNull(k)
	}
	switch k {
	case value.KindBool:
		return value.NewBool(r.bool_())
	case value.KindInt:
		return value.NewInt(r.varint())
	case value.KindDate:
		return value.NewDate(r.varint())
	case value.KindFloat:
		return value.NewFloat(math.Float64frombits(r.uvarint()))
	case value.KindString:
		return value.NewString(r.str())
	}
	return value.Value{}
}

// --- record payload codec --------------------------------------------------

func encodePayload(rec *Record) ([]byte, error) {
	w := &bwriter{}
	w.uvarint(rec.Seq)
	w.u8(rec.Kind)
	switch rec.Kind {
	case KindStmt:
		w.bytes(rec.IR)
		w.uvarint(uint64(len(rec.Params)))
		for k, v := range rec.Params {
			w.str(k)
			w.value(v)
		}
	case KindTableLoad:
		w.bool_(rec.Load.Register)
		if err := encodeTable(w, rec.Load.Table); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("graql: wal: unknown record kind %d", rec.Kind)
	}
	return w.buf, nil
}

// DecodePayload decodes one CRC-validated WAL payload. It never panics on
// malformed input: any truncation or garbage yields an error.
func DecodePayload(payload []byte) (*Record, error) {
	r := &breader{buf: payload}
	rec := &Record{Seq: r.uvarint(), Kind: r.u8()}
	switch rec.Kind {
	case KindStmt:
		rec.IR = append([]byte(nil), r.bytes()...)
		n := r.uvarint()
		if r.err == nil && n > 0 {
			rec.Params = make(map[string]value.Value)
			for i := uint64(0); i < n && r.err == nil; i++ {
				k := r.str()
				rec.Params[k] = r.value()
			}
		}
	case KindTableLoad:
		reg := r.bool_()
		t := decodeTable(r)
		rec.Load = &TableLoad{Register: reg, Table: t}
	default:
		if r.err == nil {
			r.fail("unknown record kind %d", rec.Kind)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("graql: wal: %d trailing bytes in record", len(payload)-r.off)
	}
	return rec, nil
}

// --- table codec (shared by WAL records and snapshots) ---------------------

func encodeTable(w *bwriter, t *table.Table) error {
	if t == nil {
		return fmt.Errorf("graql: wal: nil table in record")
	}
	w.str(t.Name)
	schema := t.Schema()
	w.uvarint(uint64(len(schema)))
	for _, c := range schema {
		w.str(c.Name)
		w.u8(byte(c.Type.Kind))
		w.uvarint(uint64(c.Type.Width))
	}
	w.uvarint(uint64(t.NumRows()))
	for r := uint32(0); r < uint32(t.NumRows()); r++ {
		for c := 0; c < t.NumCols(); c++ {
			w.value(t.Value(r, c))
		}
	}
	return nil
}

func decodeTable(r *breader) *table.Table {
	name := r.str()
	ncols := r.uvarint()
	if r.err != nil {
		return nil
	}
	var schema table.Schema
	for i := uint64(0); i < ncols && r.err == nil; i++ {
		cn := r.str()
		kind := value.Kind(r.u8())
		width := r.uvarint()
		if !validKind(kind) {
			r.fail("bad column kind %d", kind)
			return nil
		}
		schema = append(schema, table.ColumnDef{Name: cn, Type: value.Type{Kind: kind, Width: int(width)}})
	}
	if r.err != nil {
		return nil
	}
	t, err := table.New(name, schema)
	if err != nil {
		r.fail("bad table schema: %v", err)
		return nil
	}
	nrows := r.uvarint()
	row := make([]value.Value, len(schema))
	for i := uint64(0); i < nrows && r.err == nil; i++ {
		for c := range row {
			row[c] = r.value()
		}
		if r.err != nil {
			return nil
		}
		if err := t.AppendRow(row); err != nil {
			r.fail("bad table row: %v", err)
			return nil
		}
	}
	if r.err != nil {
		return nil
	}
	return t
}

// --- frame codec -----------------------------------------------------------

func encodeFrame(payload []byte) []byte {
	out := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[frameHeader:], payload)
	return out
}

// ScanFrames walks the framed records in data, calling fn for each
// CRC-valid, decodable record. It returns the byte offset of the first
// frame that is torn or corrupt (== len(data) when the log is clean):
// recovery truncates the log there and replays everything before it. A
// decode error from a CRC-valid frame aborts the scan with that error
// (the log is corrupt beyond a simple torn tail). fn errors abort too.
func ScanFrames(data []byte, fn func(*Record) error) (validLen int, err error) {
	off := 0
	for {
		if len(data)-off < frameHeader {
			return off, nil // torn or clean tail
		}
		plen := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if uint64(plen) > uint64(len(data)-off-frameHeader) {
			return off, nil // length field runs past the end: torn tail
		}
		payload := data[off+frameHeader : off+frameHeader+int(plen)]
		if crc32.ChecksumIEEE(payload) != sum {
			return off, nil // bit flip or partial write: stop here
		}
		rec, derr := DecodePayload(payload)
		if derr != nil {
			return off, derr
		}
		if fn != nil {
			if ferr := fn(rec); ferr != nil {
				return off, ferr
			}
		}
		off += frameHeader + int(plen)
	}
}
