package storage

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"graql/internal/table"
)

// Snapshot is a compact point-in-time image of the durable catalog state:
// every table's rows plus the binary-IR script of all vertex and edge
// declarations (replaying the script re-derives the views, so CSR indexes
// never hit disk). Seq is the WAL sequence number the image covers.
//
// On-disk layout: magic "GQSN", u8 version, u32 crc32 of the body, then
// the body — uvarint seq, uvarint table count, each table in the shared
// table encoding, then the declaration IR as a length-prefixed byte slice.
type Snapshot struct {
	Seq    uint64
	Tables []*table.Table
	DeclIR []byte
}

var snapMagic = []byte("GQSN")

const snapVersion = 1

func encodeSnapshot(snap *Snapshot) ([]byte, error) {
	body := &bwriter{}
	body.uvarint(snap.Seq)
	body.uvarint(uint64(len(snap.Tables)))
	for _, t := range snap.Tables {
		if err := encodeTable(body, t); err != nil {
			return nil, err
		}
	}
	body.bytes(snap.DeclIR)

	w := &bwriter{}
	w.raw(snapMagic)
	w.u8(snapVersion)
	w.uvarint(uint64(crc32.ChecksumIEEE(body.buf)))
	w.raw(body.buf)
	return w.buf, nil
}

func decodeSnapshot(data []byte) (*Snapshot, error) {
	r := &breader{buf: data}
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != string(snapMagic) {
		return nil, fmt.Errorf("graql: snapshot: bad magic")
	}
	r.off = len(snapMagic)
	if v := r.u8(); r.err == nil && v != snapVersion {
		return nil, fmt.Errorf("graql: snapshot: unsupported version %d", v)
	}
	sum := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if uint64(crc32.ChecksumIEEE(data[r.off:])) != sum {
		return nil, fmt.Errorf("graql: snapshot: checksum mismatch")
	}
	snap := &Snapshot{Seq: r.uvarint()}
	ntables := r.uvarint()
	for i := uint64(0); i < ntables && r.err == nil; i++ {
		t := decodeTable(r)
		if t != nil {
			snap.Tables = append(snap.Tables, t)
		}
	}
	snap.DeclIR = append([]byte(nil), r.bytes()...)
	if r.err != nil {
		return nil, r.err
	}
	return snap, nil
}

// LoadSnapshot reads and validates the data directory's snapshot,
// returning nil when none has been written yet.
func (s *Store) LoadSnapshot() (*Snapshot, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, snapFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("graql: snapshot: %w", err)
	}
	return decodeSnapshot(data)
}

// readSnapshotHeader returns the covered sequence number of the on-disk
// snapshot (0 when absent), validating the checksum so a corrupt snapshot
// fails at open rather than at restore.
func (s *Store) readSnapshotHeader() (uint64, error) {
	snap, err := s.LoadSnapshot()
	if err != nil {
		return 0, err
	}
	if snap == nil {
		return 0, nil
	}
	return snap.Seq, nil
}

// WriteSnapshot atomically installs a new snapshot (temp file, fsync,
// rename) covering everything up to the last appended record, then
// truncates the WAL: the snapshot plus an empty log is equivalent to the
// old snapshot plus the full log. The caller must guarantee no concurrent
// Append (the engine holds its writer mutex across checkpoints).
func (s *Store) WriteSnapshot(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap.Seq = s.lastSeq
	data, err := encodeSnapshot(snap)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("graql: snapshot: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("graql: snapshot: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, snapFile)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("graql: snapshot: %w", err)
	}
	// The WAL is now redundant up to lastSeq == snap.Seq.
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("graql: snapshot: truncating wal: %w", err)
	}
	if _, err := s.f.Seek(0, 0); err != nil {
		return fmt.Errorf("graql: snapshot: %w", err)
	}
	s.walBytes = 0
	s.snapSeq = snap.Seq
	if s.checkpoints != nil {
		s.checkpoints.Inc()
	}
	return nil
}
