package cluster_test

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"testing"
	"time"

	"graql/internal/bitmap"
	"graql/internal/cluster"
	"graql/internal/graph"
	"graql/internal/obs"
)

// startWorkers boots n real Worker servers on loopback listeners over g
// and returns their addresses (index = partition). Workers and
// listeners are torn down with the test.
func startWorkers(t testing.TB, g *graph.Graph, n int, strategy cluster.Strategy) ([]string, []*cluster.Worker, []net.Listener) {
	t.Helper()
	addrs := make([]string, n)
	workers := make([]*cluster.Worker, n)
	listeners := make([]net.Listener, n)
	for p := 0; p < n; p++ {
		wk, err := cluster.NewWorker(g, p, n, strategy)
		if err != nil {
			t.Fatal(err)
		}
		wk.SetLogger(slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug})))
		wk.SetObs(obs.New())
		if wk.Part() != p {
			t.Fatalf("worker reports partition %d, want %d", wk.Part(), p)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[p] = ln.Addr().String()
		workers[p] = wk
		listeners[p] = ln
		go wk.Serve(ln) //nolint:errcheck // torn down by Close below
		t.Cleanup(func() { wk.Close(); ln.Close() })
	}
	return addrs, workers, listeners
}

// dialWorkers builds a TCPTransport to the given workers with fast
// test-friendly deadlines.
func dialWorkers(t testing.TB, g *graph.Graph, addrs []string, strategy cluster.Strategy) *cluster.TCPTransport {
	t.Helper()
	tp, err := cluster.DialTCP(addrs, cluster.DialOptions{
		Strategy:    strategy,
		Fingerprint: cluster.GraphFingerprint(g),
		Timeout:     2 * time.Second,
		Retries:     1,
		DialWindow:  5 * time.Second,
		Obs:         obs.New(),
		Log:         slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug})),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tp.Close)
	if tp.Parts() != len(addrs) {
		t.Fatalf("transport reports %d partitions, want %d", tp.Parts(), len(addrs))
	}
	if got := tp.Addrs(); len(got) != len(addrs) || got[0] != addrs[0] {
		t.Fatalf("transport addrs %v, want %v", got, addrs)
	}
	return tp
}

// evenSet builds a filter bitmap accepting even ids of a type.
func evenSet(n int) *bitmap.Bitmap {
	b := bitmap.New(n)
	for v := uint32(0); v < uint32(n); v += 2 {
		b.Set(v)
	}
	return b
}

// TestTransportEquivalence is the property test for the Transport seam:
// on randomized graphs, the channel transport (in-process simulation)
// and the TCP transport (real worker servers over sockets) produce
// identical frontier sets AND identical exchange statistics — message
// counts, sent/local vertex counts, modelled bytes, rounds, and the
// per-partition sent profile. Run under -race this also exercises the
// concurrent scatter/gather paths.
func TestTransportEquivalence(t *testing.T) {
	for _, seed := range []int64{7, 11, 42} {
		for _, strategy := range []cluster.Strategy{cluster.Hash, cluster.Block} {
			for _, parts := range []int{2, 3, 4} {
				t.Run(fmt.Sprintf("seed=%d/%s/parts=%d", seed, strategy, parts), func(t *testing.T) {
					g := fixture(t, seed, 2)
					addrs, _, _ := startWorkers(t, g, parts, strategy)
					tp := dialWorkers(t, g, addrs, strategy)

					// Forward and backward step directions both cross the
					// transport (e: A→B walked forward then in reverse;
					// f: B→A walked in reverse to land back on B).
					steps := func() []cluster.Step {
						return []cluster.Step{
							{Edge: g.EdgeType("e"), Forward: true, FilterSet: evenSet(g.VertexType("B").Count())},
							{Edge: g.EdgeType("e"), Forward: false},
							{Edge: g.EdgeType("f"), Forward: false},
						}
					}
					filter := func(v uint32) bool { return v%3 != 0 }

					sim, err := cluster.NewWithStrategy(g, parts, strategy)
					if err != nil {
						t.Fatal(err)
					}
					sim.SetObs(obs.New())
					wantSets, wantStats, err := sim.Traverse(g.VertexType("A"), filter, steps())
					if err != nil {
						t.Fatal(err)
					}

					net1, err := cluster.NewWithTransport(g, tp)
					if err != nil {
						t.Fatal(err)
					}
					net1.SetObs(obs.New())
					net1.SetTraceID("0123456789abcdef0123456789abcdef")
					gotSets, gotStats, err := net1.Traverse(g.VertexType("A"), filter, steps())
					if err != nil {
						t.Fatal(err)
					}

					for i := range wantSets {
						if !gotSets[i].Equal(wantSets[i]) {
							t.Fatalf("step %d: networked frontier set differs from simulation", i)
						}
					}
					if gotStats.Rounds != wantStats.Rounds ||
						gotStats.Messages != wantStats.Messages ||
						gotStats.VerticesSent != wantStats.VerticesSent ||
						gotStats.VerticesLocal != wantStats.VerticesLocal ||
						gotStats.BytesSent != wantStats.BytesSent {
						t.Fatalf("stats diverge:\n  sim %+v\n  tcp %+v", wantStats, gotStats)
					}
					for p := range wantStats.PerPartSent {
						if gotStats.PerPartSent[p] != wantStats.PerPartSent[p] {
							t.Fatalf("per-partition sent profile diverges at p%d: sim %d, tcp %d",
								p, wantStats.PerPartSent[p], gotStats.PerPartSent[p])
						}
					}
				})
			}
		}
	}
}

// TestWorkerFailurePartial: killing a worker mid-cluster makes the next
// traversal fail with a structured *PartialError naming the dead
// partition — no hang, no panic — and the transport's health view
// reflects the degraded worker.
func TestWorkerFailurePartial(t *testing.T) {
	g := fixture(t, 3, 2)
	addrs, workers, listeners := startWorkers(t, g, 3, cluster.Hash)
	tp, err := cluster.DialTCP(addrs, cluster.DialOptions{
		Strategy:    cluster.Hash,
		Fingerprint: cluster.GraphFingerprint(g),
		Timeout:     500 * time.Millisecond,
		Retries:     1,
		DialWindow:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()

	c, err := cluster.NewWithTransport(g, tp)
	if err != nil {
		t.Fatal(err)
	}
	if c.Parts() != 3 {
		t.Fatalf("cluster over a 3-worker transport reports %d parts", c.Parts())
	}
	steps := []cluster.Step{{Edge: g.EdgeType("e"), Forward: true}}
	if _, _, err := c.Traverse(g.VertexType("A"), nil, steps); err != nil {
		t.Fatalf("healthy cluster must traverse: %v", err)
	}

	// Kill partition 1 (server down, connection dropped, no redial target).
	workers[1].Close()
	listeners[1].Close()

	done := make(chan error, 1)
	go func() {
		_, _, err := c.Traverse(g.VertexType("A"), nil, steps)
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("traversal hung after worker death")
	}
	var perr *cluster.PartialError
	if !errors.As(err, &perr) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	if len(perr.Failures) != 1 || perr.Failures[0].Part != 1 {
		t.Fatalf("failure must name partition 1: %+v", perr.Failures)
	}

	health := tp.Health()
	if health[1].Healthy {
		t.Error("partition 1 must be cached unhealthy after the failed superstep")
	}
	probed := tp.Probe(time.Second)
	if probed[1].Healthy {
		t.Error("probe must report partition 1 down")
	}
	if !probed[0].Healthy || !probed[2].Healthy {
		t.Errorf("surviving workers must stay healthy: %+v", probed)
	}
}

// TestHandshakeMismatch: a coordinator whose partition layout or graph
// disagrees with a worker must fail the dial — fast, not after the
// dial window.
func TestHandshakeMismatch(t *testing.T) {
	g := fixture(t, 13, 1)
	addrs, _, _ := startWorkers(t, g, 2, cluster.Hash)

	// Wrong partition count: worker 0 is configured for a 2-way cluster.
	if _, err := cluster.DialTCP(addrs[:1], cluster.DialOptions{
		Strategy:    cluster.Hash,
		Fingerprint: cluster.GraphFingerprint(g),
		DialWindow:  2 * time.Second,
	}); err == nil {
		t.Fatal("partition-count mismatch must fail the dial")
	}

	// Wrong placement strategy.
	if _, err := cluster.DialTCP(addrs, cluster.DialOptions{
		Strategy:    cluster.Block,
		Fingerprint: cluster.GraphFingerprint(g),
		DialWindow:  2 * time.Second,
	}); err == nil {
		t.Fatal("placement mismatch must fail the dial")
	}

	// Wrong dataset: a different random graph has a different fingerprint.
	other := fixture(t, 14, 2)
	if _, err := cluster.DialTCP(addrs, cluster.DialOptions{
		Strategy:    cluster.Hash,
		Fingerprint: cluster.GraphFingerprint(other),
		DialWindow:  2 * time.Second,
	}); err == nil {
		t.Fatal("graph-fingerprint mismatch must fail the dial")
	}
}

// TestWorkerRestartRecovers: a worker that dies and comes back on the
// same address is picked up by the retry/redial path without rebuilding
// the transport.
func TestWorkerRestartRecovers(t *testing.T) {
	g := fixture(t, 21, 2)
	addrs, workers, listeners := startWorkers(t, g, 2, cluster.Hash)
	tp := dialWorkers(t, g, addrs, cluster.Hash)
	c, err := cluster.NewWithTransport(g, tp)
	if err != nil {
		t.Fatal(err)
	}
	steps := []cluster.Step{{Edge: g.EdgeType("e"), Forward: true}}

	// Kill worker 0, then restart it on the same address.
	workers[0].Close()
	listeners[0].Close()
	wk, err := cluster.NewWorker(g, 0, 2, cluster.Hash)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addrs[0])
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addrs[0], err)
	}
	go wk.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { wk.Close(); ln.Close() })

	// The old connection is dead; the RPC fails once, redials, succeeds.
	if _, _, err := c.Traverse(g.VertexType("A"), nil, steps); err != nil {
		t.Fatalf("traversal must recover through redial: %v", err)
	}
	if h := tp.Probe(time.Second); !h[0].Healthy {
		t.Error("restarted worker must probe healthy")
	}
}
