// Package cluster implements the GEMS backend cluster (paper §III): the
// database graph partitioned across the aggregated memory of N compute
// nodes, with path queries executed as bulk-synchronous rounds of local
// edge-index expansion followed by frontier exchange between partitions.
//
// Partition execution sits behind the Transport interface. The
// ChannelTransport runs every partition as a goroutine over one shared
// in-memory graph — a faithful shared-nothing simulation that counts
// exchanged messages and vertex ids, the quantities that dominate
// distributed graph-query cost. The TCPTransport scatters each superstep
// to real worker processes over sockets (cmd/gems-server -worker) and
// gathers their partition results. Both transports run the identical
// expansion kernel, so the simulation doubles as the correctness oracle
// for the networked path: same frontier sets, same message counts.
package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"sync"

	"graql/internal/bitmap"
	"graql/internal/graph"
	"graql/internal/obs"
)

// Strategy selects how vertex ids map to partitions — the paper singles
// out "the difficulty of partitioning graphs across nodes on a cluster";
// the two standard baselines are offered so their communication behaviour
// can be compared (experiment E6).
type Strategy uint8

// Partitioning strategies.
const (
	// Hash scatters ids round-robin (v mod p): balanced, locality-blind.
	Hash Strategy = iota
	// Block assigns contiguous id ranges per partition: preserves
	// whatever locality id assignment order carries (BSBM ids follow
	// insertion order).
	Block
)

func (s Strategy) String() string {
	if s == Block {
		return "block"
	}
	return "hash"
}

// ParseStrategy maps a placement name ("hash" | "block") to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "hash", "":
		return Hash, nil
	case "block":
		return Block, nil
	}
	return Hash, fmt.Errorf("cluster: unknown placement strategy %q (want hash or block)", name)
}

// Cluster drives BSP path traversals over one database graph through a
// Transport (simulated nodes or networked workers).
type Cluster struct {
	g         *graph.Graph
	transport Transport
	parts     int
	strategy  Strategy
	obs       *obs.Registry
	span      *obs.Span
	log       *slog.Logger
	ctx       context.Context
	traceID   string
}

// SetContext attaches a cancellation context; Traverse then aborts
// between BSP supersteps once the context is done, and in-flight
// expansion rounds drain early. nil (the default) disables the checks.
func (c *Cluster) SetContext(ctx context.Context) { c.ctx = ctx }

// ctxErr reports the attached context's error, wrapped so callers see
// where the traversal stopped. Nil-safe.
func (c *Cluster) ctxErr() error {
	if c.ctx == nil {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("cluster: traversal aborted: %w", err)
	}
	return nil
}

// SetObs attaches an observability registry; every Traverse then also
// accumulates its exchange statistics into graql_cluster_* counters,
// including per-node sent-vertex counts (label node="p<i>").
func (c *Cluster) SetObs(reg *obs.Registry) { c.obs = reg }

// SetTraceSpan attaches a parent trace span; every Traverse then records
// one child span per BSP superstep, each with one grandchild span per
// node carrying that node's exchange counts (and, on the networked
// transport, real RPC latency and wire bytes). nil (the default)
// disables span recording.
func (c *Cluster) SetTraceSpan(sp *obs.Span) { c.span = sp }

// SetLogger attaches a structured logger; supersteps then emit debug
// lines with frontier and exchange counts. nil (the default) disables
// logging.
func (c *Cluster) SetLogger(l *slog.Logger) { c.log = l }

// SetTraceID attaches the query's trace id; the networked transport
// forwards it to workers so their logs correlate with the coordinator's.
func (c *Cluster) SetTraceID(id string) { c.traceID = id }

// New partitions the graph's vertex id spaces across `parts` simulated
// nodes with hash placement (GEMS's baseline).
func New(g *graph.Graph, parts int) (*Cluster, error) {
	return NewWithStrategy(g, parts, Hash)
}

// NewWithStrategy selects the placement strategy explicitly.
func NewWithStrategy(g *graph.Graph, parts int, strategy Strategy) (*Cluster, error) {
	t, err := NewChannelTransport(g, parts, strategy)
	if err != nil {
		return nil, err
	}
	return NewWithTransport(g, t)
}

// NewWithTransport drives traversals over g through an explicit
// transport (the seam the networked path plugs into). g is the
// coordinator's local copy of the graph: start sets and step validation
// evaluate locally, only superstep expansion runs on the transport.
func NewWithTransport(g *graph.Graph, t Transport) (*Cluster, error) {
	if t.Parts() < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 partition, got %d", t.Parts())
	}
	return &Cluster{g: g, transport: t, parts: t.Parts(), strategy: t.Strategy()}, nil
}

// Parts returns the number of cluster nodes.
func (c *Cluster) Parts() int { return c.parts }

// Strategy returns the placement strategy.
func (c *Cluster) Strategy() Strategy { return c.strategy }

// Step is one edge traversal of a distributed path query.
type Step struct {
	Edge *graph.EdgeType
	// Forward traverses source→target; otherwise the reverse index.
	Forward bool
	// FilterSet optionally restricts accepted target vertices to a
	// precomputed candidate set. A bitmap rather than a predicate
	// function: the networked transport ships it to workers as part of
	// the superstep frame.
	FilterSet *bitmap.Bitmap
}

// Wire-size model for the exchange accounting: a fixed per-message
// header plus one 32-bit id per vertex (paper §III: frontier exchange
// dominates distributed query cost). Both transports count with this
// model so their statistics are comparable; the networked transport
// additionally reports real frame bytes through graql_dist_* metrics.
const (
	msgHeaderBytes = 16
	vertexIDBytes  = 4
)

// Stats accumulates the communication behaviour of one query.
type Stats struct {
	Rounds int
	// Messages counts non-empty partition-to-partition exchanges
	// (src ≠ dst).
	Messages int
	// VerticesSent counts vertex ids crossing partition boundaries.
	VerticesSent int
	// VerticesLocal counts ids delivered within their own partition.
	VerticesLocal int
	// BytesSent models the wire traffic of the counted messages:
	// msgHeaderBytes per message plus vertexIDBytes per sent id.
	BytesSent int
	// PerPartSent counts the vertex ids each source partition sent to
	// remote partitions (index = partition).
	PerPartSent []int
}

// Traverse runs a linear path query: a start set on startType filtered by
// startFilter, then one BSP round per step (paper Eq. 5 forward pass),
// followed by a backward culling pass. It returns the culled per-step
// vertex sets (index 0 = start set) and exchange statistics. On the
// networked transport a failed worker surfaces as a *PartialError.
func (c *Cluster) Traverse(startType *graph.VertexType, startFilter func(uint32) bool, steps []Step) ([]*bitmap.Bitmap, Stats, error) {
	if err := c.validate(startType, steps); err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{PerPartSent: make([]int, c.parts)}

	sets := make([]*bitmap.Bitmap, len(steps)+1)
	sets[0] = c.localFilterSet(startType.Count(), startFilter)

	// Forward pass.
	for i, st := range steps {
		if err := c.ctxErr(); err != nil {
			return nil, stats, err
		}
		next := st.Edge.Dst
		if !st.Forward {
			next = st.Edge.Src
		}
		out, err := c.superstep("forward", i+1, sets[i], st, next.Count(), &stats)
		if err != nil {
			return nil, stats, err
		}
		sets[i+1] = out
	}

	// Backward culling pass: the reverse traversal uses the opposite
	// index of each edge type (this is precisely why GEMS builds
	// bidirectional indexes, §III-B).
	for i := len(steps) - 1; i >= 0; i-- {
		if err := c.ctxErr(); err != nil {
			return nil, stats, err
		}
		st := steps[i]
		back := Step{Edge: st.Edge, Forward: !st.Forward}
		prevType := st.Edge.Src
		if !st.Forward {
			prevType = st.Edge.Dst
		}
		reached, err := c.superstep("backward", i+1, sets[i+1], back, prevType.Count(), &stats)
		if err != nil {
			return nil, stats, err
		}
		sets[i].And(reached)
	}
	if err := c.ctxErr(); err != nil {
		return nil, stats, err
	}
	c.recordStats(&stats)
	return sets, stats, nil
}

// superstep runs one BSP exchange round through the transport and, when
// a trace span or logger is attached, records the round's frontier size
// and exchange deltas: a "superstep" child span plus one "node" span per
// cluster node with its sent-vertex count (and RPC latency/wire bytes
// when the node is a networked worker).
func (c *Cluster) superstep(pass string, round int, frontier *bitmap.Bitmap, st Step, outSize int, stats *Stats) (*bitmap.Bitmap, error) {
	sp := c.span.Child("superstep", fmt.Sprintf("%s round %d over %s", pass, round, st.Edge.Name))
	prevMsgs, prevBytes, prevSent := stats.Messages, stats.BytesSent, stats.VerticesSent
	out, results, err := c.exchangeExpand(pass, round, frontier, st, outSize, stats)
	if err != nil {
		if sp != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
		}
		return nil, err
	}
	if sp != nil {
		sp.AddRows(int64(out.Count()))
		sp.SetAttr("messages", strconv.Itoa(stats.Messages-prevMsgs))
		sp.SetAttr("vertices_sent", strconv.Itoa(stats.VerticesSent-prevSent))
		sp.SetAttr("bytes_sent", strconv.Itoa(stats.BytesSent-prevBytes))
		for _, r := range results {
			nsp := sp.Child("node", fmt.Sprintf("p%d", r.Part))
			sent := r.Sent()
			nsp.AddRows(int64(sent))
			nsp.SetAttr("vertices_sent", strconv.Itoa(sent))
			if r.Addr != "" {
				nsp.SetAttr("addr", r.Addr)
				nsp.SetAttr("rpc_us", strconv.FormatInt(r.RPCMicros, 10))
				nsp.SetAttr("wire_bytes", strconv.FormatInt(r.WireBytes, 10))
				if r.Retries > 0 {
					nsp.SetAttr("retries", strconv.Itoa(r.Retries))
				}
			}
			nsp.End()
		}
		sp.End()
	}
	if c.log != nil {
		c.log.Debug("cluster superstep",
			"pass", pass, "round", round, "edge", st.Edge.Name,
			"frontier", out.Count(),
			"messages", stats.Messages-prevMsgs,
			"vertices_sent", stats.VerticesSent-prevSent,
			"bytes_sent", stats.BytesSent-prevBytes)
	}
	return out, nil
}

// recordStats folds one traversal's exchange statistics into the
// attached registry.
func (c *Cluster) recordStats(st *Stats) {
	if c.obs == nil {
		return
	}
	c.obs.Counter("graql_cluster_traversals_total", "distributed traversals executed").Inc()
	c.obs.Counter("graql_cluster_rounds_total", "BSP exchange rounds executed").Add(int64(st.Rounds))
	c.obs.Counter("graql_cluster_messages_total", "non-empty partition-to-partition exchanges").Add(int64(st.Messages))
	c.obs.Counter("graql_cluster_vertices_sent_total", "vertex ids sent across partition boundaries").Add(int64(st.VerticesSent))
	c.obs.Counter("graql_cluster_vertices_local_total", "vertex ids delivered within their own partition").Add(int64(st.VerticesLocal))
	c.obs.Counter("graql_cluster_bytes_sent_total", "modelled wire bytes of cross-partition messages").Add(int64(st.BytesSent))
	for p, n := range st.PerPartSent {
		c.obs.CounterL("graql_cluster_node_vertices_sent_total",
			"vertex ids sent to remote partitions, by source node",
			map[string]string{"node": fmt.Sprintf("p%d", p)}).Add(int64(n))
	}
}

func (c *Cluster) validate(startType *graph.VertexType, steps []Step) error {
	cur := startType
	for i, st := range steps {
		if st.Edge == nil {
			return fmt.Errorf("cluster: step %d has no edge type", i)
		}
		want := st.Edge.Src
		if !st.Forward {
			want = st.Edge.Dst
		}
		if want != cur {
			return fmt.Errorf("cluster: step %d expects %s, path is at %s", i, want.Name, cur.Name)
		}
		if st.Forward {
			cur = st.Edge.Dst
		} else {
			cur = st.Edge.Src
		}
	}
	return nil
}

// localFilterSet builds the start set, evaluating the filter in parallel
// per partition. The start predicate is a coordinator-local function (it
// closes over the candidate machinery), so this phase always runs
// in-process; only superstep expansion crosses the transport.
func (c *Cluster) localFilterSet(n int, filter func(uint32) bool) *bitmap.Bitmap {
	out := bitmap.New(n)
	var wg sync.WaitGroup
	for p := 0; p < c.parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for v := uint32(0); v < uint32(n); v++ {
				if v&1023 == 0 && c.ctx != nil && c.ctx.Err() != nil {
					return
				}
				if owner(c.strategy, c.parts, v, n) != p {
					continue
				}
				if filter == nil || filter(v) {
					out.SetAtomic(v)
				}
			}
		}(p)
	}
	wg.Wait()
	return out
}

// exchangeExpand runs one BSP round through the transport: every
// partition expands its owned frontier vertices through the edge index
// and returns discovered targets bucketed by owner; the coordinator
// merges the buckets and counts messages. Accounting is independent of
// the transport — src≠dst buckets count as exchange traffic whether they
// crossed a channel or a socket — which is what makes the simulated and
// networked statistics directly comparable.
func (c *Cluster) exchangeExpand(pass string, round int, frontier *bitmap.Bitmap, st Step, outSize int, stats *Stats) (*bitmap.Bitmap, []PartResult, error) {
	stats.Rounds++
	req := &SuperstepReq{
		Edge:     st.Edge.Name,
		Forward:  st.Forward,
		Pass:     pass,
		Round:    round,
		Frontier: frontier,
		Filter:   st.FilterSet,
		InSize:   frontier.Len(),
		OutSize:  outSize,
		TraceID:  c.traceID,
	}
	ctx := c.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	results, err := c.transport.Superstep(ctx, req)
	if err != nil {
		return nil, nil, err
	}

	// Delivery: each destination merges everything addressed to it;
	// traffic is counted once per non-empty (src,dst) bucket.
	out := bitmap.New(outSize)
	for _, r := range results {
		for dst, buf := range r.Dst {
			if len(buf) == 0 {
				continue
			}
			if r.Part != dst {
				stats.Messages++
				stats.VerticesSent += len(buf)
				stats.BytesSent += msgHeaderBytes + len(buf)*vertexIDBytes
				if stats.PerPartSent != nil {
					stats.PerPartSent[r.Part] += len(buf)
				}
			} else {
				stats.VerticesLocal += len(buf)
			}
			for _, t := range buf {
				out.Set(t)
			}
		}
	}
	return out, results, nil
}
