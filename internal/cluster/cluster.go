// Package cluster simulates the GEMS backend cluster (paper §III): the
// database graph partitioned across the aggregated memory of N compute
// nodes, with path queries executed as bulk-synchronous rounds of local
// edge-index expansion followed by frontier exchange between partitions.
//
// The paper's evaluation platform — a high-memory InfiniBand cluster — is
// not available here, so this package substitutes a faithful
// shared-nothing simulation: each simulated node owns a hash partition of
// every vertex type, expands only edges whose source it owns, and
// vertices discovered for remote partitions are "sent" through per-round
// exchange buffers. The simulation counts exchanged messages and vertex
// ids, the quantities that dominate distributed graph-query cost, so the
// partition-scaling experiments (E6) measure the communication behaviour
// the real system would exhibit.
package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"sync"

	"graql/internal/bitmap"
	"graql/internal/graph"
	"graql/internal/obs"
)

// Strategy selects how vertex ids map to partitions — the paper singles
// out "the difficulty of partitioning graphs across nodes on a cluster";
// the simulation offers the two standard baselines so their communication
// behaviour can be compared (experiment E6).
type Strategy uint8

// Partitioning strategies.
const (
	// Hash scatters ids round-robin (v mod p): balanced, locality-blind.
	Hash Strategy = iota
	// Block assigns contiguous id ranges per partition: preserves
	// whatever locality id assignment order carries (BSBM ids follow
	// insertion order).
	Block
)

func (s Strategy) String() string {
	if s == Block {
		return "block"
	}
	return "hash"
}

// Cluster is a simulated GEMS backend over one database graph.
type Cluster struct {
	g        *graph.Graph
	parts    int
	strategy Strategy
	obs      *obs.Registry
	span     *obs.Span
	log      *slog.Logger
	ctx      context.Context
}

// SetContext attaches a cancellation context; Traverse then aborts
// between BSP supersteps once the context is done, and in-flight
// expansion rounds drain early. nil (the default) disables the checks.
func (c *Cluster) SetContext(ctx context.Context) { c.ctx = ctx }

// ctxErr reports the attached context's error, wrapped so callers see
// where the traversal stopped. Nil-safe.
func (c *Cluster) ctxErr() error {
	if c.ctx == nil {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("cluster: traversal aborted: %w", err)
	}
	return nil
}

// SetObs attaches an observability registry; every Traverse then also
// accumulates its exchange statistics into graql_cluster_* counters,
// including per-node sent-vertex counts (label node="p<i>").
func (c *Cluster) SetObs(reg *obs.Registry) { c.obs = reg }

// SetTraceSpan attaches a parent trace span; every Traverse then records
// one child span per BSP superstep, each with one grandchild span per
// simulated node carrying that node's exchange counts. nil (the default)
// disables span recording.
func (c *Cluster) SetTraceSpan(sp *obs.Span) { c.span = sp }

// SetLogger attaches a structured logger; supersteps then emit debug
// lines with frontier and exchange counts. nil (the default) disables
// logging.
func (c *Cluster) SetLogger(l *slog.Logger) { c.log = l }

// New partitions the graph's vertex id spaces across `parts` simulated
// nodes with hash placement (GEMS's baseline).
func New(g *graph.Graph, parts int) (*Cluster, error) {
	return NewWithStrategy(g, parts, Hash)
}

// NewWithStrategy selects the placement strategy explicitly.
func NewWithStrategy(g *graph.Graph, parts int, strategy Strategy) (*Cluster, error) {
	if parts < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 partition, got %d", parts)
	}
	return &Cluster{g: g, parts: parts, strategy: strategy}, nil
}

// Parts returns the number of simulated nodes.
func (c *Cluster) Parts() int { return c.parts }

// Strategy returns the placement strategy.
func (c *Cluster) Strategy() Strategy { return c.strategy }

// owner maps vertex v of a type with n instances to its partition.
func (c *Cluster) owner(v uint32, n int) int {
	if c.strategy == Block {
		if n == 0 {
			return 0
		}
		p := int(uint64(v) * uint64(c.parts) / uint64(n))
		if p >= c.parts {
			p = c.parts - 1
		}
		return p
	}
	return int(v) % c.parts
}

// Step is one edge traversal of a distributed path query.
type Step struct {
	Edge *graph.EdgeType
	// Forward traverses source→target; otherwise the reverse index.
	Forward bool
	// Filter optionally restricts accepted target vertices.
	Filter func(v uint32) bool
}

// Wire-size model for the simulated exchange: a fixed per-message header
// plus one 32-bit id per vertex (paper §III: frontier exchange dominates
// distributed query cost).
const (
	msgHeaderBytes = 16
	vertexIDBytes  = 4
)

// Stats accumulates the communication behaviour of one query.
type Stats struct {
	Rounds int
	// Messages counts non-empty partition-to-partition exchanges
	// (src ≠ dst).
	Messages int
	// VerticesSent counts vertex ids crossing partition boundaries.
	VerticesSent int
	// VerticesLocal counts ids delivered within their own partition.
	VerticesLocal int
	// BytesSent models the wire traffic of the counted messages:
	// msgHeaderBytes per message plus vertexIDBytes per sent id.
	BytesSent int
	// PerPartSent counts the vertex ids each source partition sent to
	// remote partitions (index = partition).
	PerPartSent []int
}

// Traverse runs a linear path query: a start set on startType filtered by
// startFilter, then one BSP round per step (paper Eq. 5 forward pass),
// followed by a backward culling pass. It returns the culled per-step
// vertex sets (index 0 = start set) and exchange statistics.
func (c *Cluster) Traverse(startType *graph.VertexType, startFilter func(uint32) bool, steps []Step) ([]*bitmap.Bitmap, Stats, error) {
	if err := c.validate(startType, steps); err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{PerPartSent: make([]int, c.parts)}

	sets := make([]*bitmap.Bitmap, len(steps)+1)
	sets[0] = c.localFilterSet(startType.Count(), startFilter)

	// Forward pass.
	for i, st := range steps {
		if err := c.ctxErr(); err != nil {
			return nil, stats, err
		}
		next := st.Edge.Dst
		if !st.Forward {
			next = st.Edge.Src
		}
		sets[i+1] = c.superstep("forward", i+1, sets[i], st, next.Count(), &stats)
	}

	// Backward culling pass: the reverse traversal uses the opposite
	// index of each edge type (this is precisely why GEMS builds
	// bidirectional indexes, §III-B).
	for i := len(steps) - 1; i >= 0; i-- {
		if err := c.ctxErr(); err != nil {
			return nil, stats, err
		}
		st := steps[i]
		back := Step{Edge: st.Edge, Forward: !st.Forward}
		prevType := st.Edge.Src
		if !st.Forward {
			prevType = st.Edge.Dst
		}
		reached := c.superstep("backward", i+1, sets[i+1], back, prevType.Count(), &stats)
		sets[i].And(reached)
	}
	if err := c.ctxErr(); err != nil {
		return nil, stats, err
	}
	c.recordStats(&stats)
	return sets, stats, nil
}

// superstep runs one BSP exchange round through exchangeExpand and, when
// a trace span or logger is attached, records the round's frontier size
// and exchange deltas: a "superstep" child span plus one "node" span per
// simulated node with its sent-vertex count.
func (c *Cluster) superstep(pass string, round int, frontier *bitmap.Bitmap, st Step, outSize int, stats *Stats) *bitmap.Bitmap {
	sp := c.span.Child("superstep", fmt.Sprintf("%s round %d over %s", pass, round, st.Edge.Name))
	prevMsgs, prevBytes, prevSent := stats.Messages, stats.BytesSent, stats.VerticesSent
	var perPart []int
	if sp != nil {
		perPart = append([]int(nil), stats.PerPartSent...)
	}
	out := c.exchangeExpand(frontier, st, outSize, stats)
	if sp != nil {
		sp.AddRows(int64(out.Count()))
		sp.SetAttr("messages", strconv.Itoa(stats.Messages-prevMsgs))
		sp.SetAttr("vertices_sent", strconv.Itoa(stats.VerticesSent-prevSent))
		sp.SetAttr("bytes_sent", strconv.Itoa(stats.BytesSent-prevBytes))
		for p := 0; p < c.parts; p++ {
			nsp := sp.Child("node", fmt.Sprintf("p%d", p))
			sent := stats.PerPartSent[p] - perPart[p]
			nsp.AddRows(int64(sent))
			nsp.SetAttr("vertices_sent", strconv.Itoa(sent))
			nsp.End()
		}
		sp.End()
	}
	if c.log != nil {
		c.log.Debug("cluster superstep",
			"pass", pass, "round", round, "edge", st.Edge.Name,
			"frontier", out.Count(),
			"messages", stats.Messages-prevMsgs,
			"vertices_sent", stats.VerticesSent-prevSent,
			"bytes_sent", stats.BytesSent-prevBytes)
	}
	return out
}

// recordStats folds one traversal's exchange statistics into the
// attached registry.
func (c *Cluster) recordStats(st *Stats) {
	if c.obs == nil {
		return
	}
	c.obs.Counter("graql_cluster_traversals_total", "distributed traversals executed").Inc()
	c.obs.Counter("graql_cluster_rounds_total", "BSP exchange rounds executed").Add(int64(st.Rounds))
	c.obs.Counter("graql_cluster_messages_total", "non-empty partition-to-partition exchanges").Add(int64(st.Messages))
	c.obs.Counter("graql_cluster_vertices_sent_total", "vertex ids sent across partition boundaries").Add(int64(st.VerticesSent))
	c.obs.Counter("graql_cluster_vertices_local_total", "vertex ids delivered within their own partition").Add(int64(st.VerticesLocal))
	c.obs.Counter("graql_cluster_bytes_sent_total", "modelled wire bytes of cross-partition messages").Add(int64(st.BytesSent))
	for p, n := range st.PerPartSent {
		c.obs.CounterL("graql_cluster_node_vertices_sent_total",
			"vertex ids sent to remote partitions, by source node",
			map[string]string{"node": fmt.Sprintf("p%d", p)}).Add(int64(n))
	}
}

func (c *Cluster) validate(startType *graph.VertexType, steps []Step) error {
	cur := startType
	for i, st := range steps {
		if st.Edge == nil {
			return fmt.Errorf("cluster: step %d has no edge type", i)
		}
		want := st.Edge.Src
		if !st.Forward {
			want = st.Edge.Dst
		}
		if want != cur {
			return fmt.Errorf("cluster: step %d expects %s, path is at %s", i, want.Name, cur.Name)
		}
		if st.Forward {
			cur = st.Edge.Dst
		} else {
			cur = st.Edge.Src
		}
	}
	return nil
}

// localFilterSet builds the start set, evaluating the filter in parallel
// per partition (each simulated node scans only the vertices it owns).
func (c *Cluster) localFilterSet(n int, filter func(uint32) bool) *bitmap.Bitmap {
	out := bitmap.New(n)
	var wg sync.WaitGroup
	for p := 0; p < c.parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for v := uint32(0); v < uint32(n); v++ {
				if v&1023 == 0 && c.ctx != nil && c.ctx.Err() != nil {
					return
				}
				if c.owner(v, n) != p {
					continue
				}
				if filter == nil || filter(v) {
					out.SetAtomic(v)
				}
			}
		}(p)
	}
	wg.Wait()
	return out
}

// exchangeExpand runs one BSP round: every partition expands its owned
// frontier vertices through the edge index, buffering discovered targets
// by owner; buffers are then delivered and merged. Message and vertex
// counts accumulate into stats.
func (c *Cluster) exchangeExpand(frontier *bitmap.Bitmap, st Step, outSize int, stats *Stats) *bitmap.Bitmap {
	stats.Rounds++
	// Phase 1: local expansion into per-destination buffers.
	inSize := frontier.Len()
	sendBufs := make([][][]uint32, c.parts) // [src][dst][]vertex
	var wg sync.WaitGroup
	for p := 0; p < c.parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			bufs := make([][]uint32, c.parts)
			seen := bitmap.New(outSize) // local dedup before sending
			// Amortised cancellation poll: a dead context drains this
			// node's expansion early; Traverse surfaces the abort after
			// the round's barrier.
			var tick uint32
			dead := false
			expand := func(v uint32) {
				targets := c.neighbors(st, v)
				for _, t := range targets {
					if st.Filter != nil && !st.Filter(t) {
						continue
					}
					if seen.Get(t) {
						continue
					}
					seen.Set(t)
					d := c.owner(t, outSize)
					bufs[d] = append(bufs[d], t)
				}
			}
			frontier.ForEach(func(v uint32) {
				if dead || c.owner(v, inSize) != p {
					return
				}
				tick++
				if tick&1023 == 0 && c.ctx != nil && c.ctx.Err() != nil {
					dead = true
					return
				}
				expand(v)
			})
			sendBufs[p] = bufs
		}(p)
	}
	wg.Wait()

	// Phase 2: delivery. Each destination merges everything addressed to
	// it; traffic is counted once per non-empty (src,dst) buffer.
	out := bitmap.New(outSize)
	for src := 0; src < c.parts; src++ {
		for dst := 0; dst < c.parts; dst++ {
			buf := sendBufs[src][dst]
			if len(buf) == 0 {
				continue
			}
			if src != dst {
				stats.Messages++
				stats.VerticesSent += len(buf)
				stats.BytesSent += msgHeaderBytes + len(buf)*vertexIDBytes
				if stats.PerPartSent != nil {
					stats.PerPartSent[src] += len(buf)
				}
			} else {
				stats.VerticesLocal += len(buf)
			}
			for _, t := range buf {
				out.Set(t)
			}
		}
	}
	return out
}

// neighbors returns the step's targets of one vertex, using the forward
// or reverse index (or an edge scan when the reverse index is absent).
func (c *Cluster) neighbors(st Step, v uint32) []uint32 {
	if st.Forward {
		nbr, _ := st.Edge.Forward().Neighbors(v)
		return nbr
	}
	if rev, ok := st.Edge.Reverse(); ok {
		nbr, _ := rev.Neighbors(v)
		return nbr
	}
	var out []uint32
	for e := uint32(0); e < uint32(st.Edge.Count()); e++ {
		s, d := st.Edge.EdgeAt(e)
		if d == v {
			out = append(out, s)
		}
	}
	return out
}
