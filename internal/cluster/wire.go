package cluster

import (
	"bufio"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"graql/internal/bitmap"
)

// Worker wire protocol: each frame is a 4-byte big-endian length prefix
// followed by exactly that many bytes of JSON. One request frame yields
// one response frame on the same connection, in order (supersteps are a
// strict request/response RPC; the coordinator opens one connection per
// worker and never interleaves).
//
// Requests carry an "op":
//
//	hello — handshake: the coordinator states the partition index it
//	        expects this worker to own, the total partition count, the
//	        placement strategy, and its graph fingerprint; the worker
//	        verifies all four and echoes its own values back. Any
//	        mismatch fails the dial — a coordinator must never scatter
//	        supersteps to a worker holding a different graph or
//	        disagreeing about vertex placement.
//	step  — one BSP superstep: expand the owned slice of the frontier
//	        through the named edge index and return discovered targets
//	        bucketed by owning partition.
//	ping  — liveness probe (used by /readyz and health checks).
//
// Bitmaps travel as base64 of their little-endian uint64 words; vertex
// id buffers as base64 of little-endian uint32 ids. Both are dense,
// order-preserving encodings, so a superstep's response is byte-stable
// for a given graph and frontier.

// maxFrameBytes bounds a single frame (64 MiB — a frontier bitmap over
// hundreds of millions of vertices still fits with wide margin).
const maxFrameBytes = 64 << 20

// workerReq is one coordinator→worker frame.
type workerReq struct {
	Op string `json:"op"`

	// hello fields.
	Part        int    `json:"part,omitempty"`
	Parts       int    `json:"parts,omitempty"`
	Strategy    string `json:"strategy,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`

	// step fields.
	Edge     string `json:"edge,omitempty"`
	Forward  bool   `json:"forward,omitempty"`
	Pass     string `json:"pass,omitempty"`
	Round    int    `json:"round,omitempty"`
	TraceID  string `json:"trace_id,omitempty"`
	InSize   int    `json:"in_size,omitempty"`
	OutSize  int    `json:"out_size,omitempty"`
	Frontier string `json:"frontier,omitempty"`
	Filter   string `json:"filter,omitempty"`
}

// workerResp is one worker→coordinator frame.
type workerResp struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`

	// hello echo.
	Part        int    `json:"part,omitempty"`
	Parts       int    `json:"parts,omitempty"`
	Strategy    string `json:"strategy,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`

	// step result: index = destination partition, base64 LE uint32 ids.
	Dst []string `json:"dst,omitempty"`
}

// writeFrame marshals v and writes one length-prefixed frame, returning
// the total bytes put on the wire (header + payload).
func writeFrame(w io.Writer, v any) (int, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("cluster: marshal frame: %w", err)
	}
	if len(payload) > maxFrameBytes {
		return 0, fmt.Errorf("cluster: frame of %d bytes exceeds limit %d", len(payload), maxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(payload)
	return len(hdr) + n, err
}

// readFrame reads one length-prefixed frame into v, returning the total
// bytes taken off the wire.
func readFrame(r *bufio.Reader, v any) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return 0, fmt.Errorf("cluster: frame of %d bytes exceeds limit %d", n, maxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return 0, fmt.Errorf("cluster: unmarshal frame: %w", err)
	}
	return len(hdr) + int(n), nil
}

// encodeBitmap packs a bitmap's words little-endian and base64s them.
// nil encodes as "" (absent filter).
func encodeBitmap(b *bitmap.Bitmap) string {
	if b == nil {
		return ""
	}
	words := b.Words()
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// decodeBitmap is the inverse of encodeBitmap for a bitmap of capacity n.
// "" decodes to nil.
func decodeBitmap(n int, s string) (*bitmap.Bitmap, error) {
	if s == "" {
		return nil, nil
	}
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("cluster: bitmap decode: %w", err)
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("cluster: bitmap payload of %d bytes is not word-aligned", len(buf))
	}
	words := make([]uint64, len(buf)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return bitmap.NewFromWords(n, words), nil
}

// encodeIDs packs vertex ids little-endian and base64s them.
func encodeIDs(ids []uint32) string {
	if len(ids) == 0 {
		return ""
	}
	buf := make([]byte, 4*len(ids))
	for i, id := range ids {
		binary.LittleEndian.PutUint32(buf[i*4:], id)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// decodeIDs is the inverse of encodeIDs.
func decodeIDs(s string) ([]uint32, error) {
	if s == "" {
		return nil, nil
	}
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("cluster: id buffer decode: %w", err)
	}
	if len(buf)%4 != 0 {
		return nil, fmt.Errorf("cluster: id buffer of %d bytes is not id-aligned", len(buf))
	}
	ids := make([]uint32, len(buf)/4)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint32(buf[i*4:])
	}
	return ids, nil
}

// fingerprintString renders a graph fingerprint for the handshake frame
// (hex, so uint64 survives JSON without float truncation).
func fingerprintString(fp uint64) string { return fmt.Sprintf("%016x", fp) }
