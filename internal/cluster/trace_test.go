package cluster_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"graql/internal/cluster"
	"graql/internal/obs"
)

// TestSuperstepSpansAndLogs attaches a trace span and a debug logger to a
// traversal and checks the superstep/node span hierarchy plus the
// structured log lines.
func TestSuperstepSpansAndLogs(t *testing.T) {
	g := fixture(t, 7, 1)
	const parts = 3
	c, err := cluster.New(g, parts)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTrace(obs.TraceID{})
	root := tr.Span("cluster", "test traversal")
	c.SetTraceSpan(root)
	var buf bytes.Buffer
	logger, err := obs.NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	c.SetLogger(logger)

	steps := []cluster.Step{
		{Edge: g.EdgeType("e"), Forward: true},
		{Edge: g.EdgeType("f"), Forward: true},
	}
	_, stats, err := c.Traverse(g.VertexType("A"), nil, steps)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	tree := tr.Tree()
	if len(tree.Roots) != 1 {
		t.Fatalf("roots = %d", len(tree.Roots))
	}
	supersteps := tree.Roots[0].Children
	// Forward pass per step plus backward culling per step.
	if len(supersteps) != 2*len(steps) {
		t.Fatalf("superstep spans = %d, want %d", len(supersteps), 2*len(steps))
	}
	if stats.Rounds != 2*len(steps) {
		t.Fatalf("stats.Rounds = %d, want %d", stats.Rounds, 2*len(steps))
	}
	totalSent := 0
	for _, ss := range supersteps {
		if ss.Action != "superstep" {
			t.Fatalf("child action %q", ss.Action)
		}
		if ss.Attrs["messages"] == "" || ss.Attrs["vertices_sent"] == "" {
			t.Fatalf("superstep attrs: %v", ss.Attrs)
		}
		if len(ss.Children) != parts {
			t.Fatalf("node spans = %d, want %d", len(ss.Children), parts)
		}
		for _, n := range ss.Children {
			if n.Action != "node" || !strings.HasPrefix(n.Detail, "p") {
				t.Fatalf("node span: %+v", n)
			}
			totalSent += int(n.Rows)
		}
	}
	// Per-node sent counts must reconcile with the traversal total.
	if totalSent != stats.VerticesSent {
		t.Fatalf("node spans sent %d vertices, stats say %d", totalSent, stats.VerticesSent)
	}

	// One debug line per superstep, each valid JSON with the schema keys.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2*len(steps) {
		t.Fatalf("log lines = %d, want %d", len(lines), 2*len(steps))
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %v (%q)", err, line)
		}
		if rec["msg"] != "cluster superstep" || rec["edge"] == "" || rec["pass"] == "" {
			t.Fatalf("log line: %v", rec)
		}
	}

	// Untraced, unlogged traversal still works with nil span and logger.
	c2, _ := cluster.New(g, parts)
	if _, _, err := c2.Traverse(g.VertexType("A"), nil, steps); err != nil {
		t.Fatal(err)
	}
}
