package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"

	"graql/internal/graph"
	"graql/internal/obs"
)

// Worker serves one partition of the graph over the length-prefixed
// frame protocol (cmd/gems-server -worker runs exactly one of these).
// The worker holds a full local copy of the graph — GEMS partitions the
// *vertex id spaces*, not the storage: ownership (which frontier slice a
// node expands) is what the partition index decides, and the handshake
// fingerprint guarantees every worker expands over the same graph the
// coordinator plans against.
type Worker struct {
	g           *graph.Graph
	part        int
	parts       int
	strategy    Strategy
	fingerprint string
	log         *slog.Logger
	obs         *obs.Registry

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewWorker builds a worker owning partition part of parts over g.
func NewWorker(g *graph.Graph, part, parts int, strategy Strategy) (*Worker, error) {
	if parts < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 partition, got %d", parts)
	}
	if part < 0 || part >= parts {
		return nil, fmt.Errorf("cluster: partition index %d out of range [0,%d)", part, parts)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Worker{
		g:           g,
		part:        part,
		parts:       parts,
		strategy:    strategy,
		fingerprint: fingerprintString(GraphFingerprint(g)),
		ctx:         ctx,
		cancel:      cancel,
		conns:       make(map[net.Conn]struct{}),
	}, nil
}

// SetLogger attaches a structured logger for connection and superstep
// debug lines. nil (the default) disables logging.
func (w *Worker) SetLogger(l *slog.Logger) { w.log = l }

// SetObs attaches an observability registry; the worker then counts
// served supersteps and wire traffic under graql_worker_* metrics.
func (w *Worker) SetObs(reg *obs.Registry) { w.obs = reg }

// Part returns the partition index this worker owns.
func (w *Worker) Part() int { return w.part }

// Serve accepts coordinator connections on ln until Close. Each
// connection is served by its own goroutine; frames within a connection
// are processed strictly in order (the protocol is request/response).
func (w *Worker) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		go w.handle(conn)
	}
}

// Close stops the worker: in-flight expansions drain, and every open
// connection is torn down.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	w.cancel()
	for _, c := range conns {
		c.Close()
	}
}

func (w *Worker) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()
	if w.log != nil {
		w.log.Debug("worker connection open", "part", w.part, "remote", conn.RemoteAddr().String())
	}
	r := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		var req workerReq
		inBytes, err := readFrame(r, &req)
		if err != nil {
			if w.log != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				w.log.Debug("worker connection closed", "part", w.part, "err", err.Error())
			}
			return
		}
		resp := w.dispatch(&req)
		outBytes, err := writeFrame(bw, resp)
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			return
		}
		if w.obs != nil {
			w.obs.Counter("graql_worker_frames_total", "frames served by this worker").Inc()
			w.obs.Counter("graql_worker_bytes_in_total", "frame bytes received by this worker").Add(int64(inBytes))
			w.obs.Counter("graql_worker_bytes_out_total", "frame bytes sent by this worker").Add(int64(outBytes))
		}
	}
}

func (w *Worker) dispatch(req *workerReq) *workerResp {
	switch req.Op {
	case "ping":
		return &workerResp{OK: true, Part: w.part}
	case "hello":
		return w.hello(req)
	case "step":
		return w.step(req)
	}
	return &workerResp{Err: fmt.Sprintf("worker: unknown op %q", req.Op)}
}

// hello verifies the coordinator and worker agree on partition layout,
// placement, and graph content before any superstep runs.
func (w *Worker) hello(req *workerReq) *workerResp {
	echo := &workerResp{
		Part:        w.part,
		Parts:       w.parts,
		Strategy:    w.strategy.String(),
		Fingerprint: w.fingerprint,
	}
	switch {
	case req.Part != w.part:
		echo.Err = fmt.Sprintf("worker owns partition %d, coordinator expects %d", w.part, req.Part)
	case req.Parts != w.parts:
		echo.Err = fmt.Sprintf("worker configured for %d partitions, coordinator has %d", w.parts, req.Parts)
	case req.Strategy != w.strategy.String():
		echo.Err = fmt.Sprintf("worker placement is %s, coordinator uses %s", w.strategy, req.Strategy)
	case req.Fingerprint != w.fingerprint:
		echo.Err = fmt.Sprintf("graph fingerprint mismatch: worker %s, coordinator %s (different datasets)", w.fingerprint, req.Fingerprint)
	default:
		echo.OK = true
		if w.log != nil {
			w.log.Info("worker handshake ok", "part", w.part, "parts", w.parts,
				"strategy", w.strategy.String(), "fingerprint", w.fingerprint)
		}
	}
	return echo
}

// step runs one superstep over this worker's owned slice of the frontier.
func (w *Worker) step(req *workerReq) *workerResp {
	frontier, err := decodeBitmap(req.InSize, req.Frontier)
	if err != nil {
		return &workerResp{Err: err.Error()}
	}
	if frontier == nil {
		return &workerResp{Err: "worker: step frame has no frontier"}
	}
	filter, err := decodeBitmap(req.OutSize, req.Filter)
	if err != nil {
		return &workerResp{Err: err.Error()}
	}
	sreq := &SuperstepReq{
		Edge:     req.Edge,
		Forward:  req.Forward,
		Pass:     req.Pass,
		Round:    req.Round,
		Frontier: frontier,
		Filter:   filter,
		InSize:   req.InSize,
		OutSize:  req.OutSize,
		TraceID:  req.TraceID,
	}
	bufs, err := expandOwned(w.ctx, w.g, w.part, w.parts, w.strategy, sreq)
	if err != nil {
		return &workerResp{Err: err.Error()}
	}
	dst := make([]string, len(bufs))
	sent := 0
	for d, buf := range bufs {
		dst[d] = encodeIDs(buf)
		if d != w.part {
			sent += len(buf)
		}
	}
	if w.obs != nil {
		w.obs.Counter("graql_worker_steps_total", "supersteps served by this worker").Inc()
		w.obs.Counter("graql_worker_vertices_sent_total", "vertex ids this worker sent to remote partitions").Add(int64(sent))
	}
	if w.log != nil {
		w.log.Debug("worker superstep",
			"part", w.part, "pass", req.Pass, "round", req.Round, "edge", req.Edge,
			"trace_id", req.TraceID, "sent", sent)
	}
	return &workerResp{OK: true, Part: w.part, Dst: dst}
}
