package cluster

import (
	"bufio"
	"bytes"
	"context"
	"strings"
	"testing"

	"graql/internal/bitmap"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := workerReq{Op: "step", Edge: "e", Forward: true, Pass: "forward", Round: 3,
		InSize: 64, OutSize: 128, Frontier: "AAAA"}
	wrote, err := writeFrame(&buf, &req)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != buf.Len() {
		t.Fatalf("writeFrame reported %d bytes, wrote %d", wrote, buf.Len())
	}
	var got workerReq
	read, err := readFrame(bufio.NewReader(&buf), &got)
	if err != nil {
		t.Fatal(err)
	}
	if read != wrote {
		t.Fatalf("readFrame reported %d bytes, frame was %d", read, wrote)
	}
	if got != req {
		t.Fatalf("frame round trip mutated the request: %+v vs %+v", got, req)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	if _, err := writeFrame(&bytes.Buffer{}, strings.Repeat("x", maxFrameBytes+1)); err == nil {
		t.Error("writeFrame must reject an oversize payload")
	}
	// A forged header claiming an oversize frame must be rejected before
	// any allocation.
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	var v workerReq
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr)), &v); err == nil ||
		!strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("readFrame must reject a forged oversize header, got %v", err)
	}
}

func TestFrameRejectsMalformedJSON(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 2})
	buf.WriteString("{x")
	var v workerReq
	if _, err := readFrame(bufio.NewReader(&buf), &v); err == nil ||
		!strings.Contains(err.Error(), "unmarshal") {
		t.Errorf("readFrame must reject malformed JSON, got %v", err)
	}
}

func TestBitmapCodec(t *testing.T) {
	if got := encodeBitmap(nil); got != "" {
		t.Errorf("nil bitmap must encode empty, got %q", got)
	}
	if b, err := decodeBitmap(10, ""); err != nil || b != nil {
		t.Errorf("empty string must decode to nil bitmap, got %v, %v", b, err)
	}
	b := bitmap.New(100)
	for _, v := range []uint32{0, 7, 63, 64, 99} {
		b.Set(v)
	}
	rt, err := decodeBitmap(100, encodeBitmap(b))
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Equal(b) {
		t.Fatal("bitmap codec round trip lost bits")
	}
	if _, err := decodeBitmap(100, "not!base64!"); err == nil {
		t.Error("bad base64 must fail bitmap decode")
	}
	if _, err := decodeBitmap(100, "AAAA"); err == nil ||
		!strings.Contains(err.Error(), "word-aligned") {
		t.Errorf("misaligned bitmap payload must fail, got %v", err)
	}
}

func TestIDsCodec(t *testing.T) {
	if got := encodeIDs(nil); got != "" {
		t.Errorf("empty ids must encode empty, got %q", got)
	}
	if ids, err := decodeIDs(""); err != nil || ids != nil {
		t.Errorf("empty string must decode to nil ids, got %v, %v", ids, err)
	}
	want := []uint32{0, 1, 1 << 20, 0xffffffff}
	got, err := decodeIDs(encodeIDs(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("id codec length: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("id %d: want %d, got %d", i, want[i], got[i])
		}
	}
	if _, err := decodeIDs("not!base64!"); err == nil {
		t.Error("bad base64 must fail id decode")
	}
	if _, err := decodeIDs("AAAAAAA="); err == nil ||
		!strings.Contains(err.Error(), "id-aligned") {
		t.Errorf("misaligned id payload must fail, got %v", err)
	}
}

func TestFingerprintString(t *testing.T) {
	if got := fingerprintString(0xdeadbeef); got != "00000000deadbeef" {
		t.Errorf("fingerprint must render as zero-padded hex, got %q", got)
	}
}

func TestPartialErrorMessage(t *testing.T) {
	err := &PartialError{Failures: []WorkerFailure{
		{Part: 1, Addr: "10.0.0.1:7700", Err: "deadline"},
		{Part: 3, Addr: "10.0.0.3:7700", Err: "refused"},
	}}
	msg := err.Error()
	for _, want := range []string{"p1", "10.0.0.1:7700", "deadline", "p3", "refused"} {
		if !strings.Contains(msg, want) {
			t.Errorf("partial error %q must mention %q", msg, want)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Strategy
		ok   bool
	}{
		{"hash", Hash, true},
		{"", Hash, true},
		{"block", Block, true},
		{"roundrobin", Hash, false},
	} {
		got, err := ParseStrategy(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseStrategy(%q) must fail", tc.in)
		}
	}
}

func TestOwnerBlockCoversRange(t *testing.T) {
	// Block placement must partition [0,n) into contiguous runs that
	// cover every vertex exactly once, for sizes that do and do not
	// divide evenly.
	for _, n := range []int{1, 7, 64, 100} {
		for _, parts := range []int{1, 2, 3, 4} {
			counts := make([]int, parts)
			prev := 0
			for v := 0; v < n; v++ {
				p := owner(Block, parts, uint32(v), n)
				if p < 0 || p >= parts {
					t.Fatalf("owner(Block, %d, %d, %d) = %d out of range", parts, v, n, p)
				}
				if p < prev {
					t.Fatalf("block ownership must be monotone, v=%d went %d -> %d", v, prev, p)
				}
				prev = p
				counts[p]++
			}
			total := 0
			for _, c := range counts {
				total += c
			}
			if total != n {
				t.Fatalf("block ownership covered %d of %d vertices", total, n)
			}
		}
	}
	// Hash placement must also stay in range.
	for v := 0; v < 1000; v++ {
		if p := owner(Hash, 7, uint32(v), 1000); p < 0 || p >= 7 {
			t.Fatalf("owner(Hash) = %d out of range", p)
		}
	}
}

func TestNewWorkerValidation(t *testing.T) {
	if _, err := NewWorker(nil, 0, 0, Hash); err == nil {
		t.Error("zero partitions must be rejected")
	}
	if _, err := NewWorker(nil, 3, 3, Hash); err == nil {
		t.Error("partition index == parts must be rejected")
	}
	if _, err := NewWorker(nil, -1, 3, Hash); err == nil {
		t.Error("negative partition index must be rejected")
	}
}

func TestWorkerDispatchErrors(t *testing.T) {
	w := &Worker{part: 0, parts: 1, strategy: Hash, ctx: context.Background()}
	if resp := w.dispatch(&workerReq{Op: "bogus"}); resp.OK || !strings.Contains(resp.Err, "unknown op") {
		t.Errorf("unknown op must fail, got %+v", resp)
	}
	if resp := w.dispatch(&workerReq{Op: "step", Frontier: ""}); resp.OK ||
		!strings.Contains(resp.Err, "no frontier") {
		t.Errorf("step without frontier must fail, got %+v", resp)
	}
	if resp := w.dispatch(&workerReq{Op: "step", InSize: 8, Frontier: "!!"}); resp.OK {
		t.Errorf("step with undecodable frontier must fail, got %+v", resp)
	}
	if resp := w.dispatch(&workerReq{Op: "step", InSize: 8, Frontier: encodeBitmap(bitmap.New(8)), OutSize: 8, Filter: "!!"}); resp.OK {
		t.Errorf("step with undecodable filter must fail, got %+v", resp)
	}
	if resp := w.dispatch(&workerReq{Op: "ping"}); !resp.OK {
		t.Errorf("ping must succeed, got %+v", resp)
	}
}

func TestDialTCPValidation(t *testing.T) {
	if _, err := DialTCP(nil, DialOptions{}); err == nil {
		t.Error("dialing zero workers must fail")
	}
}
