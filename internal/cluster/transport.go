package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"graql/internal/bitmap"
	"graql/internal/graph"
)

// Transport abstracts where the graph partitions live. The in-process
// ChannelTransport runs every partition as a goroutine over the shared
// graph (the original simulation, now the fast path and the correctness
// oracle); TCPTransport fans each superstep out to real worker processes
// over sockets. Both run the same expansion kernel (expandOwned), so a
// traversal produces byte-identical frontier sets and message counts on
// either side of the seam.
type Transport interface {
	// Parts returns the number of partitions (workers).
	Parts() int
	// Strategy returns the vertex-placement strategy all partitions use.
	Strategy() Strategy
	// Superstep runs one BSP expansion round: every partition expands the
	// frontier vertices it owns through the step's edge index, dedups
	// locally, applies the filter set, and returns its discovered targets
	// bucketed by owning partition. The returned slice has one entry per
	// partition, in partition order.
	Superstep(ctx context.Context, req *SuperstepReq) ([]PartResult, error)
}

// SuperstepReq describes one BSP expansion round. Everything in it is
// serializable: the distributed path ships it to workers as a frame.
type SuperstepReq struct {
	// Edge names the edge type to expand through; Forward selects the
	// source→target index (false uses the reverse index).
	Edge    string
	Forward bool
	// Pass ("forward" | "backward") and Round identify the superstep for
	// tracing and worker logs.
	Pass  string
	Round int
	// Frontier is the current vertex set (over the step's input type);
	// each partition expands only the frontier vertices it owns.
	Frontier *bitmap.Bitmap
	// Filter optionally restricts accepted targets to a precomputed
	// candidate set (the chain node's predicate bitmap). nil accepts all.
	Filter *bitmap.Bitmap
	// InSize and OutSize are the input and output vertex-type
	// cardinalities (partition ownership is computed against them).
	InSize, OutSize int
	// TraceID propagates the query's trace id into worker logs.
	TraceID string
}

// PartResult is one partition's contribution to a superstep.
type PartResult struct {
	// Part is the partition index that produced this result.
	Part int
	// Dst buckets the partition's discovered target vertices by owning
	// partition (index = destination partition).
	Dst [][]uint32
	// RPC observability, populated by the TCP transport only (zero for
	// the in-process transport): round-trip time, actual frame bytes on
	// the wire (request + response), retries spent, and worker address.
	RPCMicros int64
	WireBytes int64
	Retries   int
	Addr      string
}

// Sent returns the number of vertex ids this partition sent to remote
// partitions (its per-superstep exchange contribution).
func (r *PartResult) Sent() int {
	n := 0
	for d, buf := range r.Dst {
		if d != r.Part {
			n += len(buf)
		}
	}
	return n
}

// WorkerFailure identifies one worker that failed a superstep.
type WorkerFailure struct {
	Part int    `json:"part"`
	Addr string `json:"addr"`
	Err  string `json:"err"`
}

// PartialError reports that a superstep could not complete because one
// or more workers failed (timeout, crash, network). The coordinator
// cannot produce a complete result from the surviving partitions, so
// the query fails with this structured error; the server maps it to the
// wire code "partial".
type PartialError struct {
	Failures []WorkerFailure
}

func (e *PartialError) Error() string {
	parts := make([]string, len(e.Failures))
	for i, f := range e.Failures {
		parts[i] = fmt.Sprintf("worker p%d (%s): %s", f.Part, f.Addr, f.Err)
	}
	return "cluster: partial result, " + strings.Join(parts, "; ")
}

// owner maps vertex v of a type with n instances to its partition.
func owner(strategy Strategy, parts int, v uint32, n int) int {
	if strategy == Block {
		if n == 0 {
			return 0
		}
		p := int(uint64(v) * uint64(parts) / uint64(n))
		if p >= parts {
			p = parts - 1
		}
		return p
	}
	return int(v) % parts
}

// neighbors returns the step's targets of one vertex, using the forward
// or reverse index (or an edge scan when the reverse index is absent).
func neighbors(et *graph.EdgeType, forward bool, v uint32) []uint32 {
	if forward {
		nbr, _ := et.Forward().Neighbors(v)
		return nbr
	}
	if rev, ok := et.Reverse(); ok {
		nbr, _ := rev.Neighbors(v)
		return nbr
	}
	var out []uint32
	for e := uint32(0); e < uint32(et.Count()); e++ {
		s, d := et.EdgeAt(e)
		if d == v {
			out = append(out, s)
		}
	}
	return out
}

// expandOwned is the shared per-partition expansion kernel: partition
// `part` walks the frontier vertices it owns in ascending id order,
// expands each through the edge index, applies the filter set, dedups
// locally, and buckets discovered targets by owning partition. Both
// transports call exactly this function, which is what makes the
// in-process simulation a correctness oracle for the networked path.
// A dead context drains the expansion early (the caller surfaces the
// abort after the superstep barrier).
func expandOwned(ctx context.Context, g *graph.Graph, part, parts int, strategy Strategy, req *SuperstepReq) ([][]uint32, error) {
	et := g.EdgeType(req.Edge)
	if et == nil {
		return nil, fmt.Errorf("cluster: unknown edge type %q", req.Edge)
	}
	inWant, outWant := et.Src.Count(), et.Dst.Count()
	if !req.Forward {
		inWant, outWant = outWant, inWant
	}
	if req.InSize != inWant || req.OutSize != outWant {
		return nil, fmt.Errorf("cluster: graph divergence on edge %q: step sizes %d->%d, local graph %d->%d",
			req.Edge, req.InSize, req.OutSize, inWant, outWant)
	}
	bufs := make([][]uint32, parts)
	seen := bitmap.New(req.OutSize) // local dedup before sending
	var tick uint32
	dead := false
	req.Frontier.ForEach(func(v uint32) {
		if dead || owner(strategy, parts, v, req.InSize) != part {
			return
		}
		tick++
		if tick&1023 == 0 && ctx != nil && ctx.Err() != nil {
			dead = true
			return
		}
		for _, t := range neighbors(et, req.Forward, v) {
			if req.Filter != nil && !req.Filter.Get(t) {
				continue
			}
			if seen.Get(t) {
				continue
			}
			seen.Set(t)
			d := owner(strategy, parts, t, req.OutSize)
			bufs[d] = append(bufs[d], t)
		}
	})
	return bufs, nil
}

// ChannelTransport runs every partition as a goroutine over one shared
// in-memory graph — the original GEMS cluster simulation. It is the
// default when no worker processes are attached, and the oracle the
// networked transport is verified against.
type ChannelTransport struct {
	g        *graph.Graph
	parts    int
	strategy Strategy
}

// NewChannelTransport builds the in-process transport over g.
func NewChannelTransport(g *graph.Graph, parts int, strategy Strategy) (*ChannelTransport, error) {
	if parts < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 partition, got %d", parts)
	}
	return &ChannelTransport{g: g, parts: parts, strategy: strategy}, nil
}

// Parts returns the number of simulated nodes.
func (t *ChannelTransport) Parts() int { return t.parts }

// Strategy returns the placement strategy.
func (t *ChannelTransport) Strategy() Strategy { return t.strategy }

// Superstep expands the frontier on every simulated node concurrently.
func (t *ChannelTransport) Superstep(ctx context.Context, req *SuperstepReq) ([]PartResult, error) {
	results := make([]PartResult, t.parts)
	errs := make([]error, t.parts)
	var wg sync.WaitGroup
	for p := 0; p < t.parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			bufs, err := expandOwned(ctx, t.g, p, t.parts, t.strategy, req)
			results[p] = PartResult{Part: p, Dst: bufs}
			errs[p] = err
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// GraphFingerprint summarizes a graph's shape as a stable 64-bit hash
// over its vertex and edge types (names, cardinalities, endpoints) in
// name order. The worker handshake compares fingerprints so a
// coordinator never scatters supersteps to workers holding a different
// graph.
func GraphFingerprint(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var names []string
	for _, vt := range g.VertexTypes() {
		names = append(names, fmt.Sprintf("v:%s:%d", strings.ToLower(vt.Name), vt.Count()))
	}
	for _, et := range g.EdgeTypes() {
		names = append(names, fmt.Sprintf("e:%s:%d:%s:%s", strings.ToLower(et.Name), et.Count(),
			strings.ToLower(et.Src.Name), strings.ToLower(et.Dst.Name)))
	}
	sort.Strings(names)
	for _, s := range names {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
