package cluster_test

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"graql/internal/bitmap"
	"graql/internal/cluster"
	"graql/internal/exec"
	"graql/internal/graph"
)

// fixture loads a random A--e-->B / B--f-->A graph through the engine and
// returns its view graph.
func fixture(t testing.TB, seed int64, scale int) *graph.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	nA, nB := 5+scale*10, 5+scale*8
	var ta, tb, te, tf strings.Builder
	for i := 0; i < nA; i++ {
		fmt.Fprintf(&ta, "a%d,%d\n", i, r.Intn(10))
	}
	for i := 0; i < nB; i++ {
		fmt.Fprintf(&tb, "b%d,%d\n", i, r.Intn(10))
	}
	for i := 0; i < nA*4; i++ {
		fmt.Fprintf(&te, "a%d,b%d,%d\n", r.Intn(nA), r.Intn(nB), r.Intn(10))
	}
	for i := 0; i < nB*4; i++ {
		fmt.Fprintf(&tf, "b%d,a%d\n", r.Intn(nB), r.Intn(nA))
	}
	files := map[string]string{
		"ta.csv": ta.String(), "tb.csv": tb.String(),
		"te.csv": te.String(), "tf.csv": tf.String(),
	}
	opts := exec.DefaultOptions()
	opts.Workers = 2
	opts.FileOpener = func(path string) (io.ReadCloser, error) {
		body, ok := files[path]
		if !ok {
			return nil, fmt.Errorf("no file %s", path)
		}
		return io.NopCloser(strings.NewReader(body)), nil
	}
	e := exec.New(opts)
	if _, err := e.ExecScript(`
create table TA(id varchar(8), n integer)
create table TB(id varchar(8), n integer)
create table TE(src varchar(8), dst varchar(8), w integer)
create table TF(src varchar(8), dst varchar(8))
create vertex A(id) from table TA
create vertex B(id) from table TB
create edge e with vertices (A, B) from table TE
where TE.src = A.id and TE.dst = B.id
create edge f with vertices (B, A) from table TF
where TF.src = B.id and TF.dst = A.id
ingest table TA ta.csv
ingest table TB tb.csv
ingest table TE te.csv
ingest table TF tf.csv
`, nil); err != nil {
		t.Fatal(err)
	}
	return e.Cat.Graph()
}

// singleNodeReference computes the same traversal with the sequential
// bitmap passes (partition count 1 is trusted as the reference after
// TestSinglePartitionAgainstDirect validates it).
func traverse(t testing.TB, g *graph.Graph, parts int) ([]*bitmap.Bitmap, cluster.Stats) {
	t.Helper()
	c, err := cluster.New(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	a := g.VertexType("A")
	steps := []cluster.Step{
		{Edge: g.EdgeType("e"), Forward: true},
		{Edge: g.EdgeType("f"), Forward: true},
		{Edge: g.EdgeType("e"), Forward: true},
	}
	filter := func(v uint32) bool { return v%3 != 0 }
	sets, stats, err := c.Traverse(a, filter, steps)
	if err != nil {
		t.Fatal(err)
	}
	return sets, stats
}

// TestSinglePartitionAgainstDirect verifies the BSP engine on one
// partition against a hand-rolled sequential BFS + culling.
func TestSinglePartitionAgainstDirect(t *testing.T) {
	g := fixture(t, 23, 1)
	sets, stats, err := func() ([]*bitmap.Bitmap, cluster.Stats, error) {
		c, err := cluster.New(g, 1)
		if err != nil {
			return nil, cluster.Stats{}, err
		}
		return c.Traverse(g.VertexType("A"), nil, []cluster.Step{
			{Edge: g.EdgeType("e"), Forward: true},
			{Edge: g.EdgeType("f"), Forward: true},
		})
	}()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 0 || stats.VerticesSent != 0 {
		t.Errorf("single partition must exchange nothing: %+v", stats)
	}

	// Direct recomputation.
	e := g.EdgeType("e")
	f := g.EdgeType("f")
	s0 := bitmap.NewFull(g.VertexType("A").Count())
	s1 := bitmap.New(e.Dst.Count())
	s0.ForEach(func(v uint32) {
		nbr, _ := e.Forward().Neighbors(v)
		for _, x := range nbr {
			s1.Set(x)
		}
	})
	s2 := bitmap.New(f.Dst.Count())
	s1.ForEach(func(v uint32) {
		nbr, _ := f.Forward().Neighbors(v)
		for _, x := range nbr {
			s2.Set(x)
		}
	})
	// Backward culling.
	b1 := bitmap.New(s1.Len())
	s2.ForEach(func(v uint32) {
		rev, _ := f.Reverse()
		nbr, _ := rev.Neighbors(v)
		for _, x := range nbr {
			b1.Set(x)
		}
	})
	b1.And(s1)
	b0 := bitmap.New(s0.Len())
	b1.ForEach(func(v uint32) {
		rev, _ := e.Reverse()
		nbr, _ := rev.Neighbors(v)
		for _, x := range nbr {
			b0.Set(x)
		}
	})
	b0.And(s0)

	if !sets[2].Equal(s2) || !sets[1].Equal(b1) || !sets[0].Equal(b0) {
		t.Error("BSP single-partition traversal disagrees with direct computation")
	}
}

// TestPartitionCountInvariance: the distributed result is identical for
// every partition count; only communication changes.
func TestPartitionCountInvariance(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := fixture(t, seed, 2)
		ref, refStats := traverse(t, g, 1)
		for _, parts := range []int{2, 3, 4, 7} {
			got, stats := traverse(t, g, parts)
			for i := range ref {
				if !got[i].Equal(ref[i]) {
					t.Fatalf("seed %d parts %d: step %d differs", seed, parts, i)
				}
			}
			if stats.Rounds != refStats.Rounds {
				t.Errorf("rounds differ: %d vs %d", stats.Rounds, refStats.Rounds)
			}
			if parts > 1 && stats.Messages == 0 && stats.VerticesLocal == 0 {
				t.Errorf("parts=%d: no traffic at all recorded", parts)
			}
		}
	}
}

// TestMessageAccounting: with p partitions and hash placement, each BSP
// round produces at most p*(p-1) messages, and messages grow with p.
func TestMessageAccounting(t *testing.T) {
	g := fixture(t, 5, 3)
	_, s2 := traverse(t, g, 2)
	_, s8 := traverse(t, g, 8)
	if s2.Messages == 0 || s8.Messages == 0 {
		t.Fatal("expected cross-partition messages")
	}
	if s8.Messages <= s2.Messages {
		t.Errorf("more partitions should exchange more messages: p2=%d p8=%d", s2.Messages, s8.Messages)
	}
	maxPerRound := 8 * 7
	if s8.Messages > s2.Rounds*maxPerRound {
		t.Errorf("message count %d exceeds p(p-1) per round bound", s8.Messages)
	}
}

// TestStrategyInvariance: block and hash placement compute identical
// results; only the traffic profile differs.
func TestStrategyInvariance(t *testing.T) {
	g := fixture(t, 31, 2)
	ref, _ := traverse(t, g, 4)
	c, err := cluster.NewWithStrategy(g, 4, cluster.Block)
	if err != nil {
		t.Fatal(err)
	}
	sets, stats, err := c.Traverse(g.VertexType("A"), func(v uint32) bool { return v%3 != 0 }, []cluster.Step{
		{Edge: g.EdgeType("e"), Forward: true},
		{Edge: g.EdgeType("f"), Forward: true},
		{Edge: g.EdgeType("e"), Forward: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if !sets[i].Equal(ref[i]) {
			t.Fatalf("block placement changed step %d", i)
		}
	}
	if stats.Messages == 0 {
		t.Error("block placement should still exchange messages on random graphs")
	}
	if c.Strategy().String() != "block" {
		t.Errorf("strategy name = %s", c.Strategy())
	}
}

func TestValidateRejectsBadPath(t *testing.T) {
	g := fixture(t, 9, 1)
	c, _ := cluster.New(g, 2)
	_, _, err := c.Traverse(g.VertexType("A"), nil, []cluster.Step{
		{Edge: g.EdgeType("f"), Forward: true}, // f starts at B, not A
	})
	if err == nil {
		t.Error("type-mismatched step must fail")
	}
	if _, err := cluster.New(g, 0); err == nil {
		t.Error("zero partitions must fail")
	}
}
