package cluster_test

import (
	"context"
	"errors"
	"testing"

	"graql/internal/cluster"
	"graql/internal/graph"
)

func cancelSteps(g *graph.Graph) []cluster.Step {
	return []cluster.Step{
		{Edge: g.EdgeType("e"), Forward: true},
		{Edge: g.EdgeType("f"), Forward: true},
	}
}

// TestTraverseCanceledContext checks a dead context aborts the BSP
// traversal before its supersteps run and the error carries the
// context cause for errors.Is.
func TestTraverseCanceledContext(t *testing.T) {
	g := fixture(t, 7, 3)
	c, err := cluster.New(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.SetContext(ctx)

	_, _, err = c.Traverse(g.VertexType("A"), nil, cancelSteps(g))
	if err == nil {
		t.Fatal("want cancellation error, got nil")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false; err = %v", err)
	}
}

// TestTraverseExpiredDeadline checks deadline expiry surfaces as
// context.DeadlineExceeded, and that clearing the context restores the
// cluster to working order.
func TestTraverseExpiredDeadline(t *testing.T) {
	g := fixture(t, 7, 3)
	c, err := cluster.New(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	c.SetContext(ctx)

	_, _, err = c.Traverse(g.VertexType("A"), nil, cancelSteps(g))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false; err = %v", err)
	}

	c.SetContext(context.Background())
	sets, _, err := c.Traverse(g.VertexType("A"), nil, cancelSteps(g))
	if err != nil {
		t.Fatalf("traverse after clearing context: %v", err)
	}
	if len(sets) == 0 {
		t.Fatal("want non-empty result sets after clearing context")
	}
}
