package cluster

import (
	"bufio"
	"context"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"graql/internal/obs"
)

// DialOptions configures a TCPTransport.
type DialOptions struct {
	// Strategy is the placement strategy the coordinator plans with;
	// every worker must agree (verified in the handshake).
	Strategy Strategy
	// Fingerprint is the coordinator graph's fingerprint
	// (GraphFingerprint); every worker must hold an identical graph.
	Fingerprint uint64
	// Timeout bounds each per-worker superstep RPC (default 5s). A
	// worker that misses the deadline is retried, then reported failed.
	Timeout time.Duration
	// Retries is how many times a failed superstep RPC is re-attempted
	// against the same worker after redialing (default 1; supersteps are
	// pure functions of the frame, so retry is always safe).
	Retries int
	// DialWindow bounds the initial connect+handshake per worker
	// (default 10s), absorbing worker-process boot races in CI.
	DialWindow time.Duration
	// Obs, when set, receives graql_dist_* metrics.
	Obs *obs.Registry
	// Log, when set, receives connection lifecycle and failure lines.
	Log *slog.Logger
}

// WorkerStatus reports one worker's last-known health.
type WorkerStatus struct {
	Part    int    `json:"part"`
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	Err     string `json:"err,omitempty"`
}

// TCPTransport scatters supersteps to worker processes over sockets —
// the networked realization of the Transport seam. One connection per
// worker, strict request/response framing, per-superstep deadlines with
// capped retry, and a cached health view for /readyz.
type TCPTransport struct {
	addrs    []string
	strategy Strategy
	fp       string
	timeout  time.Duration
	retries  int
	obs      *obs.Registry
	log      *slog.Logger

	mu     sync.Mutex
	conns  []*workerLink
	health []WorkerStatus
	closed bool
}

// workerLink is one coordinator→worker connection. Its mutex serializes
// RPCs: within a connection the protocol is strictly request/response,
// and concurrent supersteps from parallel queries must not interleave
// frames.
type workerLink struct {
	addr string
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
}

// DialTCP connects to one worker per address (address index = partition
// index), performs the hello handshake with each, and returns a ready
// transport. Dialing retries inside DialWindow so workers still booting
// are absorbed; a handshake *mismatch* (wrong partition, strategy, or
// graph fingerprint) fails immediately — that is a configuration error,
// not a race.
func DialTCP(addrs []string, opts DialOptions) (*TCPTransport, error) {
	if len(addrs) < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 worker address")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.DialWindow <= 0 {
		opts.DialWindow = 10 * time.Second
	}
	t := &TCPTransport{
		addrs:    append([]string(nil), addrs...),
		strategy: opts.Strategy,
		fp:       fingerprintString(opts.Fingerprint),
		timeout:  opts.Timeout,
		retries:  opts.Retries,
		obs:      opts.Obs,
		log:      opts.Log,
		conns:    make([]*workerLink, len(addrs)),
		health:   make([]WorkerStatus, len(addrs)),
	}
	for p, addr := range addrs {
		t.conns[p] = &workerLink{addr: addr}
		t.health[p] = WorkerStatus{Part: p, Addr: addr, Healthy: true}
	}
	var firstErr error
	for p := range t.conns {
		if err := t.connect(p, opts.DialWindow); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("worker p%d (%s): %w", p, addrs[p], err)
			}
		}
	}
	if firstErr != nil {
		t.Close()
		return nil, firstErr
	}
	t.setHealthyGauge()
	if t.log != nil {
		t.log.Info("distributed transport ready", "workers", len(addrs),
			"strategy", t.strategy.String(), "fingerprint", t.fp)
	}
	return t, nil
}

// connect dials worker p and runs the handshake, retrying connection
// refusals inside window. The caller holds no locks.
func (t *TCPTransport) connect(p int, window time.Duration) error {
	link := t.conns[p]
	deadline := time.Now().Add(window)
	for {
		conn, err := net.DialTimeout("tcp", link.addr, time.Until(deadline))
		if err == nil {
			err = t.handshake(conn, p)
			if err == nil {
				link.mu.Lock()
				link.conn = conn
				link.r = bufio.NewReader(conn)
				link.mu.Unlock()
				return nil
			}
			conn.Close()
			// A completed-but-mismatched handshake is terminal.
			if _, ok := err.(*handshakeError); ok {
				return err
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dial window exhausted: %w", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// handshakeError marks a hello that completed but disagreed — retrying
// cannot fix it.
type handshakeError struct{ msg string }

func (e *handshakeError) Error() string { return e.msg }

func (t *TCPTransport) handshake(conn net.Conn, p int) error {
	conn.SetDeadline(time.Now().Add(t.timeout))
	defer conn.SetDeadline(time.Time{})
	req := &workerReq{
		Op:          "hello",
		Part:        p,
		Parts:       len(t.addrs),
		Strategy:    t.strategy.String(),
		Fingerprint: t.fp,
	}
	if _, err := writeFrame(conn, req); err != nil {
		return err
	}
	var resp workerResp
	if _, err := readFrame(bufio.NewReader(conn), &resp); err != nil {
		return err
	}
	if !resp.OK {
		return &handshakeError{msg: "handshake rejected: " + resp.Err}
	}
	return nil
}

// Parts returns the number of workers.
func (t *TCPTransport) Parts() int { return len(t.addrs) }

// Strategy returns the placement strategy.
func (t *TCPTransport) Strategy() Strategy { return t.strategy }

// Addrs returns the worker addresses in partition order.
func (t *TCPTransport) Addrs() []string { return append([]string(nil), t.addrs...) }

// Superstep scatters the round to every worker concurrently and gathers
// their partition results. Workers that fail (after the per-RPC deadline
// and capped retry) are reported together in one *PartialError; a dead
// context preempts that and surfaces as the context's error so
// cancellation keeps its own code.
func (t *TCPTransport) Superstep(ctx context.Context, req *SuperstepReq) ([]PartResult, error) {
	results := make([]PartResult, len(t.addrs))
	errs := make([]error, len(t.addrs))
	var wg sync.WaitGroup
	for p := range t.addrs {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			results[p], errs[p] = t.rpcStep(ctx, p, req)
		}(p)
	}
	wg.Wait()
	if t.obs != nil {
		t.obs.Counter("graql_dist_supersteps_total", "distributed supersteps scattered to workers").Inc()
	}
	var failures []WorkerFailure
	for p, err := range errs {
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("cluster: traversal aborted: %w", ctx.Err())
			}
			failures = append(failures, WorkerFailure{Part: p, Addr: t.addrs[p], Err: err.Error()})
		}
	}
	t.setHealthyGauge()
	if len(failures) > 0 {
		sort.Slice(failures, func(i, j int) bool { return failures[i].Part < failures[j].Part })
		return nil, &PartialError{Failures: failures}
	}
	return results, nil
}

// rpcStep runs one worker's share of a superstep: frame out, frame back,
// under a deadline, with capped redial-and-retry. Supersteps are pure
// functions of the request frame, so retrying after any failure is safe.
func (t *TCPTransport) rpcStep(ctx context.Context, p int, req *SuperstepReq) (PartResult, error) {
	wreq := &workerReq{
		Op:       "step",
		Edge:     req.Edge,
		Forward:  req.Forward,
		Pass:     req.Pass,
		Round:    req.Round,
		TraceID:  req.TraceID,
		InSize:   req.InSize,
		OutSize:  req.OutSize,
		Frontier: encodeBitmap(req.Frontier),
		Filter:   encodeBitmap(req.Filter),
	}
	var lastErr error
	retries := 0
	for attempt := 0; attempt <= t.retries; attempt++ {
		if ctx.Err() != nil {
			return PartResult{}, ctx.Err()
		}
		if attempt > 0 {
			retries++
			if t.obs != nil {
				t.obs.Counter("graql_dist_retries_total", "superstep RPC retries after worker failure").Inc()
			}
			if err := t.redial(p); err != nil {
				lastErr = err
				continue
			}
		}
		start := time.Now()
		resp, wire, err := t.roundTrip(ctx, p, wreq)
		elapsed := time.Since(start)
		if t.obs != nil {
			t.obs.HistogramL("graql_dist_rpc_latency_seconds", "per-worker superstep RPC latency",
				obs.LatencyBuckets(), map[string]string{"worker": fmt.Sprintf("p%d", p)}).Observe(elapsed.Seconds())
		}
		if err == nil {
			dst := make([][]uint32, len(resp.Dst))
			for d, s := range resp.Dst {
				if dst[d], err = decodeIDs(s); err != nil {
					break
				}
			}
			if err == nil {
				if t.obs != nil {
					t.obs.Counter("graql_dist_exchange_bytes_total", "frame bytes exchanged with workers").Add(wire)
				}
				t.setHealth(p, true, "")
				return PartResult{
					Part: p, Dst: dst,
					RPCMicros: elapsed.Microseconds(), WireBytes: wire,
					Retries: retries, Addr: t.addrs[p],
				}, nil
			}
		}
		lastErr = err
		if t.log != nil {
			t.log.Warn("worker superstep RPC failed", "worker", p, "addr", t.addrs[p],
				"attempt", attempt+1, "err", err.Error())
		}
	}
	if t.obs != nil {
		t.obs.CounterL("graql_dist_worker_failures_total", "superstep RPCs abandoned after retries, by worker",
			map[string]string{"worker": fmt.Sprintf("p%d", p)}).Inc()
	}
	t.setHealth(p, false, lastErr.Error())
	return PartResult{}, fmt.Errorf("superstep RPC failed after %d attempt(s): %w", t.retries+1, lastErr)
}

// roundTrip performs one framed request/response on worker p's
// connection under the per-RPC deadline, reporting total wire bytes.
func (t *TCPTransport) roundTrip(ctx context.Context, p int, wreq *workerReq) (*workerResp, int64, error) {
	link := t.conns[p]
	link.mu.Lock()
	defer link.mu.Unlock()
	if link.conn == nil {
		return nil, 0, fmt.Errorf("no connection")
	}
	conn := link.conn
	deadline := time.Now().Add(t.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	conn.SetDeadline(deadline)
	// A cancelled context snaps the deadline to now so a blocked read
	// returns immediately instead of running out the full timeout.
	stop := context.AfterFunc(ctx, func() {
		conn.SetDeadline(time.Now())
	})
	defer stop()
	nOut, err := writeFrame(conn, wreq)
	if err != nil {
		link.teardown()
		return nil, 0, err
	}
	var resp workerResp
	nIn, err := readFrame(link.r, &resp)
	conn.SetDeadline(time.Time{})
	if err != nil {
		link.teardown()
		return nil, 0, err
	}
	if !resp.OK {
		return nil, 0, fmt.Errorf("worker error: %s", resp.Err)
	}
	return &resp, int64(nOut + nIn), nil
}

// teardown drops a failed connection (caller holds link.mu).
func (l *workerLink) teardown() {
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
		l.r = nil
	}
}

// redial re-establishes worker p's connection and re-runs the handshake.
func (t *TCPTransport) redial(p int) error {
	link := t.conns[p]
	link.mu.Lock()
	defer link.mu.Unlock()
	link.teardown()
	conn, err := net.DialTimeout("tcp", link.addr, t.timeout)
	if err != nil {
		return err
	}
	if err := t.handshake(conn, p); err != nil {
		conn.Close()
		return err
	}
	link.conn = conn
	link.r = bufio.NewReader(conn)
	return nil
}

// setHealth updates worker p's cached status.
func (t *TCPTransport) setHealth(p int, healthy bool, errMsg string) {
	t.mu.Lock()
	t.health[p].Healthy = healthy
	t.health[p].Err = errMsg
	t.mu.Unlock()
}

// setHealthyGauge publishes the current healthy-worker count.
func (t *TCPTransport) setHealthyGauge() {
	if t.obs == nil {
		return
	}
	n := 0
	t.mu.Lock()
	for _, h := range t.health {
		if h.Healthy {
			n++
		}
	}
	t.mu.Unlock()
	t.obs.Gauge("graql_dist_workers_healthy", "workers currently considered healthy").Set(int64(n))
}

// Health returns the cached per-worker status (updated by superstep
// RPCs and Probe).
func (t *TCPTransport) Health() []WorkerStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]WorkerStatus(nil), t.health...)
}

// Probe actively pings every worker within timeout, updates the cached
// health view, and returns it. Used by /readyz so a crashed worker shows
// up without waiting for a query to fail.
func (t *TCPTransport) Probe(timeout time.Duration) []WorkerStatus {
	if timeout <= 0 {
		timeout = time.Second
	}
	var wg sync.WaitGroup
	for p := range t.conns {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			err := t.ping(p, timeout)
			if err != nil {
				// One reconnect attempt: a worker that restarted is
				// healthy again even though its old connection died.
				if rerr := t.redial(p); rerr == nil {
					err = t.ping(p, timeout)
				}
			}
			if err != nil {
				t.setHealth(p, false, err.Error())
			} else {
				t.setHealth(p, true, "")
			}
		}(p)
	}
	wg.Wait()
	t.setHealthyGauge()
	return t.Health()
}

// ping runs one ping RPC on worker p's connection.
func (t *TCPTransport) ping(p int, timeout time.Duration) error {
	link := t.conns[p]
	link.mu.Lock()
	defer link.mu.Unlock()
	if link.conn == nil {
		return fmt.Errorf("no connection")
	}
	link.conn.SetDeadline(time.Now().Add(timeout))
	defer link.conn.SetDeadline(time.Time{})
	if _, err := writeFrame(link.conn, &workerReq{Op: "ping"}); err != nil {
		link.teardown()
		return err
	}
	var resp workerResp
	if _, err := readFrame(link.r, &resp); err != nil {
		link.teardown()
		return err
	}
	if !resp.OK {
		return fmt.Errorf("worker error: %s", resp.Err)
	}
	return nil
}

// Close tears down every worker connection.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()
	for _, link := range t.conns {
		link.mu.Lock()
		link.teardown()
		link.mu.Unlock()
	}
}
