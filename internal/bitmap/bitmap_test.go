package bitmap

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	b := New(130)
	if b.Any() || b.Count() != 0 {
		t.Fatal("new bitmap must be empty")
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(129)
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	for _, i := range []uint32{0, 63, 64, 129} {
		if !b.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	b.Clear(63)
	if b.Get(63) || b.Count() != 3 {
		t.Error("Clear failed")
	}
	b.Reset()
	if b.Any() {
		t.Error("Reset failed")
	}
}

func TestNewFullTrims(t *testing.T) {
	b := NewFull(70)
	if b.Count() != 70 {
		t.Fatalf("NewFull(70).Count() = %d", b.Count())
	}
	got := b.Slice()
	if len(got) != 70 || got[0] != 0 || got[69] != 69 {
		t.Errorf("Slice = %v", got)
	}
}

// model-based property test: set algebra over random operations agrees
// with a map[uint32]bool model.
func TestAlgebraAgainstModel(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const n = 257
	for trial := 0; trial < 200; trial++ {
		a, b := New(n), New(n)
		ma, mb := map[uint32]bool{}, map[uint32]bool{}
		for i := 0; i < 120; i++ {
			x := uint32(r.Intn(n))
			if r.Intn(2) == 0 {
				a.Set(x)
				ma[x] = true
			} else {
				b.Set(x)
				mb[x] = true
			}
		}
		check := func(got *Bitmap, want func(uint32) bool, op string) {
			for i := uint32(0); i < n; i++ {
				if got.Get(i) != want(i) {
					t.Fatalf("%s mismatch at %d", op, i)
				}
			}
		}
		and := a.Clone()
		and.And(b)
		check(and, func(i uint32) bool { return ma[i] && mb[i] }, "and")
		or := a.Clone()
		or.Or(b)
		check(or, func(i uint32) bool { return ma[i] || mb[i] }, "or")
		andnot := a.Clone()
		andnot.AndNot(b)
		check(andnot, func(i uint32) bool { return ma[i] && !mb[i] }, "andnot")
		if !a.Equal(a.Clone()) {
			t.Fatal("clone must equal original")
		}
	}
}

func TestForEachRange(t *testing.T) {
	b := New(200)
	for i := uint32(0); i < 200; i += 3 {
		b.Set(i)
	}
	var got []uint32
	b.ForEachRange(10, 100, func(i uint32) { got = append(got, i) })
	for _, i := range got {
		if i < 10 || i >= 100 || i%3 != 0 {
			t.Fatalf("ForEachRange yielded %d", i)
		}
	}
	want := 0
	for i := uint32(10); i < 100; i++ {
		if i%3 == 0 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("ForEachRange yielded %d bits, want %d", len(got), want)
	}
	// Degenerate ranges.
	b.ForEachRange(50, 50, func(uint32) { t.Error("empty range must not visit") })
	b.ForEachRange(150, 10, func(uint32) { t.Error("inverted range must not visit") })
}

// quick property: ForEach visits exactly Slice(), ascending.
func TestForEachMatchesSlice(t *testing.T) {
	f := func(seeds []uint16) bool {
		b := New(1 << 16)
		for _, s := range seeds {
			b.Set(uint32(s))
		}
		var visited []uint32
		b.ForEach(func(i uint32) { visited = append(visited, i) })
		sl := b.Slice()
		if len(visited) != len(sl) {
			return false
		}
		for i := range sl {
			if visited[i] != sl[i] {
				return false
			}
			if i > 0 && sl[i] <= sl[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSetAtomicConcurrent(t *testing.T) {
	const n = 1 << 14
	b := New(n)
	firsts := make([]int, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint32(0); i < n; i++ {
				if b.SetAtomic(i) {
					firsts[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	if b.Count() != n {
		t.Fatalf("Count = %d, want %d", b.Count(), n)
	}
	total := 0
	for _, f := range firsts {
		total += f
	}
	if total != n {
		t.Errorf("each bit must be won exactly once: %d wins for %d bits", total, n)
	}
}

func TestFromSlice(t *testing.T) {
	b := FromSlice(100, []uint32{1, 5, 99, 5})
	if b.Count() != 3 || !b.Get(1) || !b.Get(5) || !b.Get(99) {
		t.Errorf("FromSlice wrong: %v", b.Slice())
	}
}
