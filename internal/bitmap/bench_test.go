package bitmap

import "testing"

func benchBitmap(n int, fill int) *Bitmap {
	b := New(n)
	for i := 0; i < n; i += fill {
		b.Set(uint32(i))
	}
	return b
}

func BenchmarkAnd(b *testing.B) {
	x := benchBitmap(1<<20, 3)
	y := benchBitmap(1<<20, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.And(y)
	}
}

func BenchmarkCount(b *testing.B) {
	x := benchBitmap(1<<20, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Count()
	}
}

func BenchmarkForEachSparse(b *testing.B) {
	x := benchBitmap(1<<20, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := uint32(0)
		x.ForEach(func(v uint32) { sum += v })
	}
}

func BenchmarkForEachDense(b *testing.B) {
	x := benchBitmap(1<<20, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := uint32(0)
		x.ForEach(func(v uint32) { sum += v })
	}
}

func BenchmarkSetAtomic(b *testing.B) {
	x := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.SetAtomic(uint32(i) & (1<<20 - 1))
	}
}
