// Package bitmap provides dense bitsets over vertex and row identifiers.
//
// Bitmaps are the workhorse of the GEMS-style path-matching engine: the set
// of vertices matched at each query step (paper Eq. 5) is a bitmap over the
// vertex type's dense local ids, and the forward-expansion / backward-culling
// passes are bitmap unions and intersections. SetAtomic allows concurrent
// workers to mark vertices during parallel frontier expansion without locks.
package bitmap

import (
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Bitmap is a fixed-size dense bitset. The zero value is an empty bitmap of
// size 0; use New to allocate one of a given size.
type Bitmap struct {
	words []uint64
	n     int
}

// New returns an empty bitmap able to hold bits [0, n).
func New(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewFull returns a bitmap of size n with every bit set.
func NewFull(n int) *Bitmap {
	b := New(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
	return b
}

// trim clears any bits beyond n in the final word.
func (b *Bitmap) trim() {
	if rem := b.n % wordBits; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Len returns the capacity (number of addressable bits).
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i uint32) { b.words[i/wordBits] |= 1 << (i % wordBits) }

// Clear clears bit i.
func (b *Bitmap) Clear(i uint32) { b.words[i/wordBits] &^= 1 << (i % wordBits) }

// Get reports whether bit i is set.
func (b *Bitmap) Get(i uint32) bool {
	return b.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

// SetAtomic sets bit i with a lock-free atomic OR, safe for concurrent use
// by parallel frontier workers. It reports whether this call changed the
// bit (i.e. the caller is the first to mark it).
func (b *Bitmap) SetAtomic(i uint32) bool {
	addr := &b.words[i/wordBits]
	mask := uint64(1) << (i % wordBits)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return true
		}
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// And intersects b with o in place. The bitmaps must be the same size.
func (b *Bitmap) And(o *Bitmap) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Or unions o into b in place. The bitmaps must be the same size.
func (b *Bitmap) Or(o *Bitmap) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// AndNot removes o's bits from b in place.
func (b *Bitmap) AndNot(o *Bitmap) {
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
}

// Reset clears every bit.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone returns a copy of b.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// Equal reports whether b and o hold exactly the same bits.
func (b *Bitmap) Equal(o *Bitmap) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach invokes fn for every set bit in ascending order.
func (b *Bitmap) ForEach(fn func(i uint32)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(uint32(wi*wordBits + tz))
			w &= w - 1
		}
	}
}

// ForEachRange invokes fn for every set bit i with lo <= i < hi, in
// ascending order. It is used to shard a frontier across workers.
func (b *Bitmap) ForEachRange(lo, hi uint32, fn func(i uint32)) {
	if hi > uint32(b.n) {
		hi = uint32(b.n)
	}
	if lo >= hi {
		return
	}
	first, last := int(lo/wordBits), int((hi-1)/wordBits)
	for wi := first; wi <= last; wi++ {
		w := b.words[wi]
		if wi == first {
			w &= ^uint64(0) << (lo % wordBits)
		}
		if wi == last {
			if rem := hi % wordBits; rem != 0 {
				w &= (1 << rem) - 1
			}
		}
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(uint32(wi*wordBits + tz))
			w &= w - 1
		}
	}
}

// Slice returns the indexes of all set bits in ascending order.
func (b *Bitmap) Slice() []uint32 {
	out := make([]uint32, 0, b.Count())
	b.ForEach(func(i uint32) { out = append(out, i) })
	return out
}

// FromSlice returns a bitmap of size n with exactly the given bits set.
func FromSlice(n int, idx []uint32) *Bitmap {
	b := New(n)
	for _, i := range idx {
		b.Set(i)
	}
	return b
}

// Words exposes the backing word slice (64 bits per word, bit i of word
// w is id w*64+i). Callers must treat it as read-only; it is the wire
// form of a frontier in the distributed exchange protocol.
func (b *Bitmap) Words() []uint64 { return b.words }

// NewFromWords builds a bitmap of capacity n from a copy of the given
// word slice (the inverse of Words). Extra bits beyond n are cleared;
// a short slice leaves the tail empty.
func NewFromWords(n int, words []uint64) *Bitmap {
	b := New(n)
	copy(b.words, words)
	b.trim()
	return b
}
