package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"graql/internal/server"
)

// Pipelining overlaps request submission with response reading on one
// TCP session: requests are written through a buffered encoder (many
// frames per syscall) and a background goroutine resolves responses in
// FIFO order, so up to `window` requests are in flight at once. On a
// high-latency link this turns N round trips into roughly one, and even
// on loopback it amortizes the per-frame write syscalls.
//
// The protocol needs no framing changes: internal/server answers
// requests on a session strictly in order, so the k-th response frame
// belongs to the k-th request frame.

// DefaultPipelineWindow bounds in-flight requests when Pipeline is
// given a window <= 0.
const DefaultPipelineWindow = 32

// Pipeline is an in-order asynchronous request stream over one client
// session. Obtain one with Client.Pipeline; submit with Exec / Execute
// / Send, each returning a Future; finish with Close.
//
// While a Pipeline is open the owning Client's synchronous methods must
// not be used — the pipeline owns the session's framing. Submissions
// are safe from multiple goroutines.
type Pipeline struct {
	c   *Client
	bw  *bufio.Writer
	enc *json.Encoder

	window  chan struct{} // in-flight slots
	pending chan *Future  // FIFO, reader resolves in order
	done    chan struct{} // reader exited

	mu     sync.Mutex // serializes submit/flush/close
	closed bool

	// The poison error has its own lock: the reader goroutine must be
	// able to record/check it while a submitter holds mu blocked on a
	// full window (the reader's progress is what frees the slot).
	emu sync.Mutex
	err error // transport poison: session is dead past this point
}

// Future is the pending result of one pipelined request.
type Future struct {
	p    *Pipeline
	ch   chan struct{}
	resp *server.Response
	err  error
}

// Pipeline starts a pipelined request stream with at most window
// requests in flight (window <= 0 uses DefaultPipelineWindow).
func (c *Client) Pipeline(window int) *Pipeline {
	if window <= 0 {
		window = DefaultPipelineWindow
	}
	// Pipelined sessions carry no per-request read deadline: responses
	// stream back asynchronously. Clear any deadline a prior synchronous
	// call left behind.
	_ = c.conn.SetDeadline(time.Time{})
	p := &Pipeline{
		c:       c,
		bw:      bufio.NewWriter(c.conn),
		window:  make(chan struct{}, window),
		pending: make(chan *Future, window),
		done:    make(chan struct{}),
	}
	p.enc = json.NewEncoder(p.bw)
	go p.read()
	return p
}

// Exec submits a script execution, returning immediately.
func (p *Pipeline) Exec(script string, params map[string]server.Param) (*Future, error) {
	return p.Send(&server.Request{Op: "exec", Script: script, Params: params})
}

// Execute submits an execution of a prepared statement handle.
func (p *Pipeline) Execute(stmt string, params map[string]server.Param) (*Future, error) {
	return p.Send(&server.Request{Op: "execute", Stmt: stmt, Params: params})
}

// Send submits an arbitrary request frame. It blocks only when the
// in-flight window is full (after flushing buffered frames, so the
// server can drain the window).
func (p *Pipeline) Send(req *server.Request) (*Future, error) {
	req.Auth = p.c.auth
	if req.TimeoutMs == 0 && p.c.opts.RequestTimeout > 0 && executionOp(req.Op) {
		req.TimeoutMs = int(p.c.opts.RequestTimeout / time.Millisecond)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, errors.New("graql: pipeline is closed")
	}
	if err := p.poisoned(); err != nil {
		return nil, err
	}
	select {
	case p.window <- struct{}{}:
	default:
		// Window full. The outstanding requests may still be sitting in
		// our write buffer — flush so the server sees them (and can
		// produce the responses that free a slot), then wait.
		if err := p.bw.Flush(); err != nil {
			p.poison(err)
			return nil, err
		}
		p.window <- struct{}{}
	}
	if err := p.enc.Encode(req); err != nil {
		p.poison(err)
		<-p.window
		return nil, err
	}
	fut := &Future{p: p, ch: make(chan struct{})}
	p.pending <- fut // capacity == window: never blocks while holding mu
	return fut, nil
}

// Flush pushes all buffered request frames to the server.
func (p *Pipeline) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.poisoned(); err != nil {
		return err
	}
	if err := p.bw.Flush(); err != nil {
		p.poison(err)
		return err
	}
	return nil
}

// Close flushes outstanding requests, waits for every response, and
// returns the first transport error (per-request failures are reported
// by each Future instead). The Client is usable synchronously again
// after Close returns.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return p.poisoned()
	}
	p.closed = true
	if p.poisoned() == nil {
		if err := p.bw.Flush(); err != nil {
			p.poison(err)
		}
	}
	close(p.pending)
	p.mu.Unlock()
	<-p.done
	return p.poisoned()
}

// read resolves responses in FIFO request order. A transport-level
// decode failure poisons the pipeline: the session framing is gone, so
// every later future fails with the same error.
func (p *Pipeline) read() {
	defer close(p.done)
	for fut := range p.pending {
		perr := p.poisoned()
		if perr != nil {
			fut.err = perr
			close(fut.ch)
			<-p.window
			continue
		}
		var resp server.Response
		if err := p.c.dec.Decode(&resp); err != nil {
			p.poison(err)
			fut.err = err
		} else if !resp.OK {
			fut.resp = &resp
			fut.err = errors.New(resp.Error)
		} else {
			fut.resp = &resp
		}
		close(fut.ch)
		<-p.window
	}
}

func (p *Pipeline) poisoned() error {
	p.emu.Lock()
	defer p.emu.Unlock()
	return p.err
}

func (p *Pipeline) poison(err error) {
	p.emu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.emu.Unlock()
}

// Wait blocks until this request's response arrives (flushing the write
// buffer first, in case the frame is still local) and returns it. Like
// the synchronous methods, a structured failure returns both the
// response and a non-nil error.
func (f *Future) Wait() (*server.Response, error) {
	_ = f.p.Flush()
	<-f.ch
	return f.resp, f.err
}
