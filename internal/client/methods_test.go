package client_test

import (
	"strings"
	"testing"
	"time"

	"graql/internal/client"
	"graql/internal/cluster"
	"graql/internal/obs"
	"graql/internal/server"
)

// One scriptable stub exercises every typed client method: the stub
// answers each op with the fields that method reads back.
func TestClientMethodSurface(t *testing.T) {
	st := startStub(t, func(req server.Request, n int64) (server.Response, bool) {
		switch req.Op {
		case "ping":
			return server.Response{OK: true}, false
		case "compile":
			return server.Response{OK: true, IR: "aXI="}, false
		case "execir":
			if req.IR != "aXI=" {
				return server.Response{OK: false, Code: server.CodeBadRequest, Error: "wrong ir"}, false
			}
			return server.Response{OK: true, Results: []server.StmtResult{{Message: "ran ir"}}}, false
		case "check":
			return server.Response{OK: true, Results: []server.StmtResult{{Message: "check ok"}}}, false
		case "prepare":
			return server.Response{OK: true, Stmt: "s7"}, false
		case "execute":
			if req.Stmt != "s7" {
				return server.Response{OK: false, Code: server.CodeBadRequest, Error: "unknown prepared statement"}, false
			}
			return server.Response{OK: true, Results: []server.StmtResult{{Message: req.Params["k"].Value}}}, false
		case "deallocate":
			return server.Response{OK: true, Results: []server.StmtResult{{Message: "deallocated"}}}, false
		case "stats":
			return server.Response{OK: true, Catalog: []server.CatalogEntry{{Kind: "table", Name: "T", Count: 3}}}, false
		case "metrics":
			return server.Response{OK: true, Metrics: "graql_up 1\n"}, false
		case "statements":
			return server.Response{OK: true, Statements: []obs.StmtStat{{Query: "select ?", Calls: 2}}}, false
		case "ps":
			return server.Response{OK: true, Queries: []obs.QueryInfo{{ID: 9, State: "running"}}}, false
		case "cancelq":
			if req.QueryID != 9 {
				return server.Response{OK: false, Code: server.CodeBadRequest, Error: "no such query"}, false
			}
			return server.Response{OK: true}, false
		case "trace":
			return server.Response{OK: true, Traces: []obs.TraceTree{{TraceID: "abc"}}}, false
		case "workers":
			return server.Response{OK: true, Workers: []cluster.WorkerStatus{{Part: 0, Addr: "w0", Healthy: true}}}, false
		case "exec":
			return server.Response{OK: true, Results: []server.StmtResult{{Message: "exec"}}}, false
		}
		return server.Response{OK: false, Code: server.CodeBadRequest, Error: "unexpected op " + req.Op}, false
	})

	cl, err := client.Dial(st.ln.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRequestTimeout(2 * time.Second)
	cl.EnableTracing(true)

	ir, err := cl.Compile("select 1")
	if err != nil || ir != "aXI=" {
		t.Errorf("Compile = %q, %v", ir, err)
	}
	if resp, err := cl.ExecIR(ir, nil); err != nil || resp.Results[0].Message != "ran ir" {
		t.Errorf("ExecIR: %v, %v", resp, err)
	}
	if _, err := cl.Check("select 1"); err != nil {
		t.Errorf("Check: %v", err)
	}

	stmt, err := cl.Prepare("select 1")
	if err != nil || stmt != "s7" {
		t.Fatalf("Prepare = %q, %v", stmt, err)
	}
	resp, err := cl.Execute(stmt, map[string]server.Param{"k": {Type: "varchar", Value: "bound"}})
	if err != nil || resp.Results[0].Message != "bound" {
		t.Errorf("Execute: %v, %v", resp, err)
	}
	if _, err := cl.Execute("nope", nil); err == nil || !strings.Contains(err.Error(), "unknown prepared") {
		t.Errorf("Execute unknown handle: %v", err)
	}
	if err := cl.Deallocate(stmt); err != nil {
		t.Errorf("Deallocate: %v", err)
	}

	if resp, err := cl.ExecTimeout("select 1", nil, time.Second); err != nil || resp.Results[0].Message != "exec" {
		t.Errorf("ExecTimeout: %v, %v", resp, err)
	}
	if resp, err := cl.Stats(); err != nil || resp.Catalog[0].Name != "T" {
		t.Errorf("Stats: %v, %v", resp, err)
	}
	if m, err := cl.Metrics(); err != nil || !strings.Contains(m, "graql_up") {
		t.Errorf("Metrics: %q, %v", m, err)
	}
	if ss, err := cl.Statements(); err != nil || len(ss) != 1 || ss[0].Calls != 2 {
		t.Errorf("Statements: %v, %v", ss, err)
	}
	qs, err := cl.LiveQueries()
	if err != nil || len(qs) != 1 || qs[0].ID != 9 {
		t.Fatalf("LiveQueries: %v, %v", qs, err)
	}
	if err := cl.CancelQuery(qs[0].ID); err != nil {
		t.Errorf("CancelQuery: %v", err)
	}
	if trs, err := cl.Traces(); err != nil || len(trs) != 1 || trs[0].TraceID != "abc" {
		t.Errorf("Traces: %v, %v", trs, err)
	}
	if ws, err := cl.Workers(); err != nil || len(ws) != 1 || !ws[0].Healthy || ws[0].Addr != "w0" {
		t.Errorf("Workers: %v, %v", ws, err)
	}
	if err := cl.Ping(); err != nil {
		t.Errorf("Ping: %v", err)
	}
}
