// Package client is the line client for the GEMS front-end server: it
// speaks the newline-delimited JSON protocol of internal/server over TCP.
//
// The client owns the session's failure handling: dial and per-request
// read deadlines, propagation of the per-query timeout to the server
// (Request.TimeoutMs), and retries with capped exponential backoff plus
// jitter. Network-level failures are retried (with a redial) only for
// idempotent operations; "overloaded" rejections are retried for every
// operation, because admission control rejects before execution starts.
package client

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"time"

	"graql/internal/cluster"
	"graql/internal/obs"
	"graql/internal/server"
)

// Options configures a session's timeouts and retry policy. The zero
// value means: 5s dial timeout, no request deadline, no retries.
type Options struct {
	// DialTimeout bounds the TCP connect plus the initial ping.
	// Zero means 5 seconds.
	DialTimeout time.Duration
	// RequestTimeout is the default per-request deadline. It is sent to
	// the server as timeoutMs on execution requests (so the server
	// aborts the query) and enforced locally as a read deadline with a
	// small grace period. Zero disables both.
	RequestTimeout time.Duration
	// MaxRetries is how many times a failed request is retried:
	// network failures redial and retry idempotent operations only;
	// "overloaded" rejections retry every operation. Zero disables
	// retries.
	MaxRetries int
	// RetryBackoff is the base delay before the first retry; each
	// subsequent attempt doubles it (capped at 1s) with up to 50%
	// random jitter. Zero means 50ms.
	RetryBackoff time.Duration
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

func (o Options) baseBackoff() time.Duration {
	if o.RetryBackoff <= 0 {
		return 50 * time.Millisecond
	}
	return o.RetryBackoff
}

// readGrace pads the local read deadline past the server-side query
// deadline, so the structured "deadline" response wins the race against
// the client's own timeout.
const readGrace = 2 * time.Second

// maxBackoff caps the exponential retry delay.
const maxBackoff = time.Second

// Client is one authenticated session with a GEMS server.
type Client struct {
	conn  net.Conn
	enc   *json.Encoder
	dec   *json.Decoder
	addr  string
	auth  string
	opts  Options
	trace bool
}

// Dial connects to a GEMS server with default options. token may be
// empty when the server runs without authentication.
func Dial(addr, token string) (*Client, error) {
	return DialOptions(addr, token, Options{})
}

// DialOptions connects with explicit timeout and retry configuration.
func DialOptions(addr, token string, opts Options) (*Client, error) {
	c := &Client{addr: addr, auth: token, opts: opts}
	if err := c.redial(); err != nil {
		return nil, err
	}
	if _, err := c.roundTrip(&server.Request{Op: "ping"}); err != nil {
		c.conn.Close()
		return nil, err
	}
	return c, nil
}

// redial (re)establishes the TCP session.
func (c *Client) redial() error {
	if c.conn != nil {
		c.conn.Close()
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.dialTimeout())
	if err != nil {
		return err
	}
	c.conn = conn
	c.enc = json.NewEncoder(conn)
	c.dec = json.NewDecoder(conn)
	return nil
}

// Close terminates the session.
func (c *Client) Close() error { return c.conn.Close() }

// SetRequestTimeout changes the default per-request deadline for
// subsequent requests (see Options.RequestTimeout).
func (c *Client) SetRequestTimeout(d time.Duration) { c.opts.RequestTimeout = d }

// EnableTracing makes every subsequent request originate a trace: the
// client generates a fresh W3C traceparent per request and sends it in
// the request's traceId field, so the server's span tree (when the
// server retains traces) joins a trace the client owns. The assigned
// trace id comes back in Response.TraceID.
func (c *Client) EnableTracing(on bool) { c.trace = on }

// Ping checks server liveness over the session.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&server.Request{Op: "ping"})
	return err
}

// Traces fetches the server's retained trace trees (oldest first; empty
// unless the server was started with trace retention).
func (c *Client) Traces() ([]obs.TraceTree, error) {
	resp, err := c.roundTrip(&server.Request{Op: "trace"})
	if err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// executionOp reports whether an operation runs statements (and so
// should carry the session's default per-query deadline).
func executionOp(op string) bool {
	return op == "exec" || op == "execir" || op == "execute"
}

// idempotentOp reports whether an operation may be blindly re-sent
// after a network failure (it cannot have changed server state).
func idempotentOp(op string) bool {
	switch op {
	case "ping", "stats", "metrics", "trace", "check", "compile", "statements", "ps", "workers":
		return true
	}
	return false
}

// roundTrip sends one request, retrying per the session's policy.
func (c *Client) roundTrip(req *server.Request) (*server.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := c.once(req)
		if err == nil || attempt >= c.opts.MaxRetries {
			return resp, err
		}
		switch {
		case resp != nil && resp.Code == server.CodeOverloaded:
			// Rejected before execution: safe to retry any op after
			// backing off.
		case resp == nil && idempotentOp(req.Op):
			// Network failure mid-frame: the session framing is gone,
			// re-establish it and re-send.
			if derr := c.redial(); derr != nil {
				return nil, err
			}
		default:
			return resp, err
		}
		time.Sleep(backoff(c.opts.baseBackoff(), attempt))
	}
}

// backoff computes the capped exponential delay with up to 50% jitter.
func backoff(base time.Duration, attempt int) time.Duration {
	d := base << uint(attempt)
	if d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// once performs a single request/response exchange.
func (c *Client) once(req *server.Request) (*server.Response, error) {
	req.Auth = c.auth
	if c.trace && req.Trace == "" && req.Op != "ping" && req.Op != "trace" && req.Op != "metrics" {
		req.Trace = obs.NewTraceParent()
	}
	// Propagate the default deadline to the server on execution ops, so
	// the query is aborted there rather than only abandoned here.
	if req.TimeoutMs == 0 && c.opts.RequestTimeout > 0 && executionOp(req.Op) {
		req.TimeoutMs = int(c.opts.RequestTimeout / time.Millisecond)
	}
	if d := c.readBudget(req); d > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(d))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	var resp server.Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return &resp, errors.New(resp.Error)
	}
	return &resp, nil
}

// readBudget resolves how long once may wait for the response frame:
// the request's server-side deadline plus grace, else the session
// default plus grace, else unbounded.
func (c *Client) readBudget(req *server.Request) time.Duration {
	if req.TimeoutMs > 0 {
		return time.Duration(req.TimeoutMs)*time.Millisecond + readGrace
	}
	if c.opts.RequestTimeout > 0 {
		return c.opts.RequestTimeout + readGrace
	}
	return 0
}

// RoundTrip sends one arbitrary request frame synchronously, applying
// the session's retry policy (for callers assembling raw requests, e.g.
// load generators).
func (c *Client) RoundTrip(req *server.Request) (*server.Response, error) {
	return c.roundTrip(req)
}

// Exec runs a GraQL script with optional typed parameters.
func (c *Client) Exec(script string, params map[string]server.Param) (*server.Response, error) {
	return c.roundTrip(&server.Request{Op: "exec", Script: script, Params: params})
}

// ExecTimeout runs a script with an explicit per-query deadline,
// propagated to the server as timeoutMs (the server clamps it to its
// configured maximum).
func (c *Client) ExecTimeout(script string, params map[string]server.Param, timeout time.Duration) (*server.Response, error) {
	return c.roundTrip(&server.Request{
		Op: "exec", Script: script, Params: params,
		TimeoutMs: int(timeout / time.Millisecond),
	})
}

// Check statically analyses a script on the server.
func (c *Client) Check(script string) (*server.Response, error) {
	return c.roundTrip(&server.Request{Op: "check", Script: script})
}

// Compile asks the front-end to compile a script to binary IR (base64).
func (c *Client) Compile(script string) (string, error) {
	resp, err := c.roundTrip(&server.Request{Op: "compile", Script: script})
	if err != nil {
		return "", err
	}
	return resp.IR, nil
}

// ExecIR executes previously compiled IR.
func (c *Client) ExecIR(irB64 string, params map[string]server.Param) (*server.Response, error) {
	return c.roundTrip(&server.Request{Op: "execir", IR: irB64, Params: params})
}

// Prepare compiles a script into a server-side prepared statement and
// returns its handle id. The server parses and compiles to binary IR
// once; Execute then binds parameters and runs the cached artifact.
func (c *Client) Prepare(script string) (string, error) {
	resp, err := c.roundTrip(&server.Request{Op: "prepare", Script: script})
	if err != nil {
		return "", err
	}
	return resp.Stmt, nil
}

// Execute runs a prepared statement handle with bound parameters.
func (c *Client) Execute(stmt string, params map[string]server.Param) (*server.Response, error) {
	return c.roundTrip(&server.Request{Op: "execute", Stmt: stmt, Params: params})
}

// Deallocate releases a prepared statement handle on the server.
func (c *Client) Deallocate(stmt string) error {
	_, err := c.roundTrip(&server.Request{Op: "deallocate", Stmt: stmt})
	return err
}

// Stats fetches the catalog snapshot.
func (c *Client) Stats() (*server.Response, error) {
	return c.roundTrip(&server.Request{Op: "stats"})
}

// Metrics fetches the server's metrics in Prometheus text format.
func (c *Client) Metrics() (string, error) {
	resp, err := c.roundTrip(&server.Request{Op: "metrics"})
	if err != nil {
		return "", err
	}
	return resp.Metrics, nil
}

// Statements fetches the per-statement-shape statistics, most expensive
// shape first.
func (c *Client) Statements() ([]obs.StmtStat, error) {
	resp, err := c.roundTrip(&server.Request{Op: "statements"})
	if err != nil {
		return nil, err
	}
	return resp.Statements, nil
}

// Workers fetches the distributed cluster's per-worker health (actively
// probed by the server). Empty when the server runs single-process.
func (c *Client) Workers() ([]cluster.WorkerStatus, error) {
	resp, err := c.roundTrip(&server.Request{Op: "workers"})
	if err != nil {
		return nil, err
	}
	return resp.Workers, nil
}

// LiveQueries fetches the server's in-flight query table.
func (c *Client) LiveQueries() ([]obs.QueryInfo, error) {
	resp, err := c.roundTrip(&server.Request{Op: "ps"})
	if err != nil {
		return nil, err
	}
	return resp.Queries, nil
}

// CancelQuery cooperatively cancels the in-flight query with the given
// id (from LiveQueries). The canceled query's own caller receives the
// structured "canceled" code.
func (c *Client) CancelQuery(id uint64) error {
	_, err := c.roundTrip(&server.Request{Op: "cancelq", QueryID: id})
	return err
}
