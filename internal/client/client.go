// Package client is the line client for the GEMS front-end server: it
// speaks the newline-delimited JSON protocol of internal/server over TCP.
package client

import (
	"encoding/json"
	"errors"
	"net"

	"graql/internal/obs"
	"graql/internal/server"
)

// Client is one authenticated session with a GEMS server.
type Client struct {
	conn  net.Conn
	enc   *json.Encoder
	dec   *json.Decoder
	auth  string
	trace bool
}

// Dial connects to a GEMS server. token may be empty when the server runs
// without authentication.
func Dial(addr, token string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn), auth: token}
	if _, err := c.roundTrip(&server.Request{Op: "ping"}); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close terminates the session.
func (c *Client) Close() error { return c.conn.Close() }

// EnableTracing makes every subsequent request originate a trace: the
// client generates a fresh W3C traceparent per request and sends it in
// the request's traceId field, so the server's span tree (when the
// server retains traces) joins a trace the client owns. The assigned
// trace id comes back in Response.TraceID.
func (c *Client) EnableTracing(on bool) { c.trace = on }

// Ping checks server liveness over the session.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&server.Request{Op: "ping"})
	return err
}

// Traces fetches the server's retained trace trees (oldest first; empty
// unless the server was started with trace retention).
func (c *Client) Traces() ([]obs.TraceTree, error) {
	resp, err := c.roundTrip(&server.Request{Op: "trace"})
	if err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

func (c *Client) roundTrip(req *server.Request) (*server.Response, error) {
	req.Auth = c.auth
	if c.trace && req.Trace == "" && req.Op != "ping" && req.Op != "trace" && req.Op != "metrics" {
		req.Trace = obs.NewTraceParent()
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	var resp server.Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return &resp, errors.New(resp.Error)
	}
	return &resp, nil
}

// Exec runs a GraQL script with optional typed parameters.
func (c *Client) Exec(script string, params map[string]server.Param) (*server.Response, error) {
	return c.roundTrip(&server.Request{Op: "exec", Script: script, Params: params})
}

// Check statically analyses a script on the server.
func (c *Client) Check(script string) (*server.Response, error) {
	return c.roundTrip(&server.Request{Op: "check", Script: script})
}

// Compile asks the front-end to compile a script to binary IR (base64).
func (c *Client) Compile(script string) (string, error) {
	resp, err := c.roundTrip(&server.Request{Op: "compile", Script: script})
	if err != nil {
		return "", err
	}
	return resp.IR, nil
}

// ExecIR executes previously compiled IR.
func (c *Client) ExecIR(irB64 string, params map[string]server.Param) (*server.Response, error) {
	return c.roundTrip(&server.Request{Op: "execir", IR: irB64, Params: params})
}

// Stats fetches the catalog snapshot.
func (c *Client) Stats() (*server.Response, error) {
	return c.roundTrip(&server.Request{Op: "stats"})
}

// Metrics fetches the server's metrics in Prometheus text format.
func (c *Client) Metrics() (string, error) {
	resp, err := c.roundTrip(&server.Request{Op: "metrics"})
	if err != nil {
		return "", err
	}
	return resp.Metrics, nil
}
