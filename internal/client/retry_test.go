package client_test

import (
	"encoding/json"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"graql/internal/client"
	"graql/internal/server"
)

// stubServer is a scriptable fake GEMS endpoint: the behave callback
// sees every decoded request with its 1-based global sequence number
// and either returns a response or asks for the connection to be
// dropped mid-frame (simulating a network failure).
type stubServer struct {
	ln    net.Listener
	seq   atomic.Int64
	conns atomic.Int64
}

func startStub(t *testing.T, behave func(req server.Request, n int64) (resp server.Response, drop bool)) *stubServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	st := &stubServer{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			st.conns.Add(1)
			go func() {
				defer conn.Close()
				dec := json.NewDecoder(conn)
				enc := json.NewEncoder(conn)
				for {
					var req server.Request
					if err := dec.Decode(&req); err != nil {
						return
					}
					resp, drop := behave(req, st.seq.Add(1))
					if drop {
						return
					}
					if err := enc.Encode(&resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return st
}

func (s *stubServer) addr() string { return s.ln.Addr().String() }

// TestRetryOverloaded checks an "overloaded" rejection is retried with
// backoff until the server admits the query.
func TestRetryOverloaded(t *testing.T) {
	var execs atomic.Int64
	st := startStub(t, func(req server.Request, n int64) (server.Response, bool) {
		if req.Op == "ping" {
			return server.Response{OK: true}, false
		}
		if execs.Add(1) <= 2 {
			return server.Response{Code: server.CodeOverloaded, Error: "server overloaded"}, false
		}
		return server.Response{OK: true}, false
	})

	cl, err := client.DialOptions(st.addr(), "", client.Options{
		MaxRetries: 3, RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	if _, err := cl.Exec("select 1", nil); err != nil {
		t.Fatalf("exec after retries: %v", err)
	}
	if got := execs.Load(); got != 3 {
		t.Errorf("exec attempts = %d, want 3 (2 rejections + success)", got)
	}
	// Two backoffs of at least 10ms and 20ms must have elapsed.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("retries completed in %v, want >= 30ms of backoff", elapsed)
	}
}

// TestOverloadedSurfacesWithoutRetries checks the structured code is
// returned as-is when retries are disabled.
func TestOverloadedSurfacesWithoutRetries(t *testing.T) {
	st := startStub(t, func(req server.Request, n int64) (server.Response, bool) {
		if req.Op == "ping" {
			return server.Response{OK: true}, false
		}
		return server.Response{Code: server.CodeOverloaded, Error: "server overloaded"}, false
	})

	cl, err := client.Dial(st.addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	resp, err := cl.Exec("select 1", nil)
	if err == nil {
		t.Fatal("want overloaded error, got success")
	}
	if resp == nil || resp.Code != server.CodeOverloaded {
		t.Fatalf("response = %+v, want code %q", resp, server.CodeOverloaded)
	}
}

// TestRedialRetryIdempotent checks a dropped connection is redialed
// and the idempotent request re-sent.
func TestRedialRetryIdempotent(t *testing.T) {
	var pings atomic.Int64
	st := startStub(t, func(req server.Request, n int64) (server.Response, bool) {
		if req.Op != "ping" {
			return server.Response{OK: true}, false
		}
		// Drop the second ping (the first one after the dial handshake)
		// mid-frame; answer every other one.
		if pings.Add(1) == 2 {
			return server.Response{}, true
		}
		return server.Response{OK: true}, false
	})

	cl, err := client.DialOptions(st.addr(), "", client.Options{
		MaxRetries: 2, RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after redial: %v", err)
	}
	if got := st.conns.Load(); got < 2 {
		t.Errorf("connections = %d, want >= 2 (client must have redialed)", got)
	}
}

// TestNoRetryNonIdempotent checks a network failure during exec is NOT
// retried: the script may have already run on the server.
func TestNoRetryNonIdempotent(t *testing.T) {
	var execs atomic.Int64
	st := startStub(t, func(req server.Request, n int64) (server.Response, bool) {
		if req.Op == "exec" {
			execs.Add(1)
			return server.Response{}, true
		}
		return server.Response{OK: true}, false
	})

	cl, err := client.DialOptions(st.addr(), "", client.Options{
		MaxRetries: 3, RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec("select 1", nil); err == nil {
		t.Fatal("want network error, got success")
	}
	if got := execs.Load(); got != 1 {
		t.Errorf("exec attempts = %d, want exactly 1 (no blind re-send)", got)
	}
}

// TestTimeoutPropagation checks the session default RequestTimeout is
// stamped onto execution requests as timeoutMs.
func TestTimeoutPropagation(t *testing.T) {
	var sawTimeout atomic.Int64
	st := startStub(t, func(req server.Request, n int64) (server.Response, bool) {
		if req.Op == "exec" {
			sawTimeout.Store(int64(req.TimeoutMs))
		}
		return server.Response{OK: true}, false
	})

	cl, err := client.DialOptions(st.addr(), "", client.Options{
		RequestTimeout: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec("select 1", nil); err != nil {
		t.Fatal(err)
	}
	if got := sawTimeout.Load(); got != 1500 {
		t.Errorf("propagated timeoutMs = %d, want 1500", got)
	}

	// An explicit per-call timeout wins over the session default.
	if _, err := cl.ExecTimeout("select 1", nil, 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := sawTimeout.Load(); got != 250 {
		t.Errorf("explicit timeoutMs = %d, want 250", got)
	}
}

// TestStuckServerReadDeadline checks the local read deadline frees a
// client whose server accepted a request and then went silent.
func TestStuckServerReadDeadline(t *testing.T) {
	st := startStub(t, func(req server.Request, n int64) (server.Response, bool) {
		if req.Op == "ping" {
			return server.Response{OK: true}, false
		}
		// Go silent: never answer, keep the connection open.
		time.Sleep(time.Hour)
		return server.Response{}, true
	})

	cl, err := client.Dial(st.addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	_, err = cl.ExecTimeout("select 1", nil, 50*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want read-deadline error, got success")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("error = %v, want a net timeout", err)
	}
	// Budget is timeoutMs (50ms) + the 2s read grace; it must trip well
	// before the stub's one-hour nap.
	if elapsed > 10*time.Second {
		t.Errorf("stuck request took %v, want ~2s", elapsed)
	}
}
