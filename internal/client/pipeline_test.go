package client_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"graql/internal/client"
	"graql/internal/server"
)

// echoStub answers every exec with its own script text, so ordering is
// observable end to end.
func echoStub(t *testing.T) *stubServer {
	return startStub(t, func(req server.Request, n int64) (server.Response, bool) {
		if req.Op == "ping" {
			return server.Response{OK: true}, false
		}
		return server.Response{OK: true, Results: []server.StmtResult{{Message: req.Script}}}, false
	})
}

func TestPipelineOrdering(t *testing.T) {
	st := echoStub(t)
	cl, err := client.Dial(st.ln.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 100
	p := cl.Pipeline(8)
	futs := make([]*client.Future, n)
	for i := range futs {
		fut, err := p.Exec(fmt.Sprintf("req-%03d", i), nil)
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		futs[i] = fut
	}
	for i, fut := range futs {
		resp, err := fut.Wait()
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if got, want := resp.Results[0].Message, fmt.Sprintf("req-%03d", i); got != want {
			t.Fatalf("response %d = %q, want %q (out of order)", i, got, want)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The session is synchronous again after Close.
	if err := cl.Ping(); err != nil {
		t.Errorf("ping after pipeline close: %v", err)
	}
}

// Structured per-request failures resolve only their own future; later
// requests on the same pipeline still succeed.
func TestPipelineStructuredErrorDoesNotPoison(t *testing.T) {
	st := startStub(t, func(req server.Request, n int64) (server.Response, bool) {
		if req.Op == "ping" {
			return server.Response{OK: true}, false
		}
		if strings.Contains(req.Script, "bad") {
			return server.Response{OK: false, Code: server.CodeParse, Error: "syntax error"}, false
		}
		return server.Response{OK: true, Results: []server.StmtResult{{Message: req.Script}}}, false
	})
	cl, err := client.Dial(st.ln.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p := cl.Pipeline(4)
	f1, _ := p.Exec("good-1", nil)
	f2, _ := p.Exec("bad-2", nil)
	f3, _ := p.Exec("good-3", nil)

	if _, err := f1.Wait(); err != nil {
		t.Errorf("f1: %v", err)
	}
	resp, err := f2.Wait()
	if err == nil || resp == nil || resp.Code != server.CodeParse {
		t.Errorf("f2: resp=%v err=%v, want structured parse failure", resp, err)
	}
	if _, err := f3.Wait(); err != nil {
		t.Errorf("f3 failed after a structured error: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// A dropped connection poisons the pipeline: the in-flight and all later
// futures fail, and Close reports the transport error.
func TestPipelinePoisonOnConnectionDrop(t *testing.T) {
	st := startStub(t, func(req server.Request, n int64) (server.Response, bool) {
		if req.Op == "ping" {
			return server.Response{OK: true}, false
		}
		if strings.Contains(req.Script, "drop") {
			return server.Response{}, true // close the conn mid-stream
		}
		return server.Response{OK: true, Results: []server.StmtResult{{Message: req.Script}}}, false
	})
	cl, err := client.DialOptions(st.ln.Addr().String(), "", client.Options{MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p := cl.Pipeline(4)
	f1, _ := p.Exec("ok-1", nil)
	f2, _ := p.Exec("drop-2", nil)
	f3, _ := p.Exec("ok-3", nil)

	if _, err := f1.Wait(); err != nil {
		t.Errorf("f1 (answered before the drop): %v", err)
	}
	if _, err := f2.Wait(); err == nil {
		t.Error("f2 resolved despite the dropped connection")
	}
	if _, err := f3.Wait(); err == nil {
		t.Error("f3 resolved after the pipeline was poisoned")
	}
	if err := p.Close(); err == nil {
		t.Error("Close returned nil on a poisoned pipeline")
	}
	// New submissions are refused outright.
	if _, err := p.Exec("late", nil); err == nil {
		t.Error("Send on a closed, poisoned pipeline succeeded")
	}
}

// A window of 1 with more requests than the window forces the
// flush-before-block path; everything must still complete in order.
func TestPipelineTinyWindow(t *testing.T) {
	st := echoStub(t)
	cl, err := client.Dial(st.ln.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p := cl.Pipeline(1)
	futs := make([]*client.Future, 20)
	for i := range futs {
		fut, err := p.Exec(fmt.Sprintf("w1-%02d", i), nil)
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		futs[i] = fut
	}
	for i, fut := range futs {
		resp, err := fut.Wait()
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if got, want := resp.Results[0].Message, fmt.Sprintf("w1-%02d", i); got != want {
			t.Fatalf("response %d = %q, want %q", i, got, want)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// Submissions from many goroutines interleave arbitrarily but each
// future must resolve to its own request's response (run under -race).
func TestPipelineConcurrentSenders(t *testing.T) {
	st := echoStub(t)
	cl, err := client.Dial(st.ln.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p := cl.Pipeline(8)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				script := fmt.Sprintf("g%d-%d", g, i)
				fut, err := p.Exec(script, nil)
				if err != nil {
					errs <- fmt.Errorf("send %s: %w", script, err)
					return
				}
				resp, err := fut.Wait()
				if err != nil {
					errs <- fmt.Errorf("wait %s: %w", script, err)
					return
				}
				if resp.Results[0].Message != script {
					errs <- fmt.Errorf("future for %s got %q", script, resp.Results[0].Message)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
