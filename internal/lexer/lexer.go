// Package lexer tokenizes GraQL source text.
//
// GraQL extends SQL with graph-path syntax, so besides the usual SQL tokens
// the lexer recognises the path arrows of the paper's query figures:
// "--" ... "-->" for an out-edge step and "<--" ... "--" for an in-edge
// step, the "[ ]" variant-step metavariable, and "%name%" query
// parameters. Comments are "//" to end of line (the style used in the
// paper's Appendix A) and "/* ... */" blocks.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Keyword
	Int
	Float
	String // single-quoted literal
	Param  // %name%

	LParen
	RParen
	LBracket
	RBracket
	LBrace
	RBrace
	Comma
	Dot
	Colon
	Semicolon
	Star
	Plus
	Minus
	Slash
	Percent

	Eq     // =
	Ne     // <> or !=
	Lt     // <
	Le     // <=
	Gt     // >
	Ge     // >=
	Dash2  // --
	RArrow // -->
	LArrow // <--
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case Ident:
		return "identifier"
	case Keyword:
		return "keyword"
	case Int:
		return "integer"
	case Float:
		return "float"
	case String:
		return "string"
	case Param:
		return "parameter"
	case LParen:
		return "'('"
	case RParen:
		return "')'"
	case LBracket:
		return "'['"
	case RBracket:
		return "']'"
	case LBrace:
		return "'{'"
	case RBrace:
		return "'}'"
	case Comma:
		return "','"
	case Dot:
		return "'.'"
	case Colon:
		return "':'"
	case Semicolon:
		return "';'"
	case Star:
		return "'*'"
	case Plus:
		return "'+'"
	case Minus:
		return "'-'"
	case Slash:
		return "'/'"
	case Percent:
		return "'%'"
	case Eq:
		return "'='"
	case Ne:
		return "'<>'"
	case Lt:
		return "'<'"
	case Le:
		return "'<='"
	case Gt:
		return "'>'"
	case Ge:
		return "'>='"
	case Dash2:
		return "'--'"
	case RArrow:
		return "'-->'"
	case LArrow:
		return "'<--'"
	}
	return "token?"
}

// keywords is the set of reserved GraQL words (matched case-insensitively).
var keywords = map[string]bool{
	"create": true, "table": true, "vertex": true, "edge": true,
	"with": true, "vertices": true, "from": true, "where": true,
	"and": true, "or": true, "not": true,
	"ingest": true, "output": true, "select": true, "top": true, "distinct": true,
	"count": true, "avg": true, "min": true, "max": true, "sum": true,
	"as": true, "group": true, "by": true, "order": true,
	"asc": true, "desc": true, "into": true, "subgraph": true,
	"graph": true, "def": true, "foreach": true, "explain": true,
	"true": true, "false": true, "null": true,
	"insert": true, "update": true, "delete": true, "values": true, "set": true,
}

// IsKeyword reports whether s is reserved.
func IsKeyword(s string) bool { return keywords[strings.ToLower(s)] }

// Token is one lexeme with its source position (1-based line and column)
// and byte offsets into the input.
type Token struct {
	Kind       Kind
	Text       string // raw text (keywords preserved as written; strings unquoted)
	Line, Col  int
	Start, End int
	// AfterNewline reports whether a line break separates this token from
	// the previous one (used for newline-delimited constructs like ingest
	// file paths).
	AfterNewline bool
}

// Lower returns the token text lower-cased (for keyword matching).
func (t Token) Lower() string { return strings.ToLower(t.Text) }

// Is reports whether t is the given keyword (case-insensitive).
func (t Token) Is(kw string) bool { return t.Kind == Keyword && t.Lower() == kw }

// Error is a lexical error with position information. Pos is the byte
// offset of the offending character in the source.
type Error struct {
	Line, Col int
	Pos       int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("graql: syntax error at line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lex tokenizes src completely, returning the token stream terminated by an
// EOF token.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src       string
	pos       int
	line, col int
	sawNL     bool
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Pos: l.pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
			l.sawNL = true
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '/' && l.peekAt(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.peekAt(1) == '*':
			l.advance(2)
			for {
				if l.pos >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.src[l.pos] == '*' && l.peekAt(1) == '/' {
					l.advance(2)
					break
				}
				l.advance(1)
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	t := Token{Line: l.line, Col: l.col, Start: l.pos, AfterNewline: l.sawNL}
	l.sawNL = false
	if l.pos >= len(l.src) {
		t.Kind = EOF
		t.End = l.pos
		return t, nil
	}
	c := l.src[l.pos]

	emit := func(k Kind, n int) (Token, error) {
		t.Kind = k
		t.Text = l.src[l.pos : l.pos+n]
		l.advance(n)
		t.End = l.pos
		return t, nil
	}

	switch {
	case isIdentStart(c):
		j := l.pos
		for j < len(l.src) && isIdentPart(l.src[j]) {
			j++
		}
		word := l.src[l.pos:j]
		k := Ident
		if IsKeyword(word) {
			k = Keyword
		}
		return emit(k, j-l.pos)

	case c >= '0' && c <= '9':
		j := l.pos
		isFloat := false
		for j < len(l.src) && (l.src[j] >= '0' && l.src[j] <= '9') {
			j++
		}
		// A '.' is part of the number only if followed by a digit, so that
		// "10" in "top 10" and "{10}" stay integers and "a.b" stays a
		// qualified name.
		if j+1 < len(l.src) && l.src[j] == '.' && l.src[j+1] >= '0' && l.src[j+1] <= '9' {
			isFloat = true
			j++
			for j < len(l.src) && (l.src[j] >= '0' && l.src[j] <= '9') {
				j++
			}
		}
		if j < len(l.src) && (l.src[j] == 'e' || l.src[j] == 'E') {
			k := j + 1
			if k < len(l.src) && (l.src[k] == '+' || l.src[k] == '-') {
				k++
			}
			if k < len(l.src) && l.src[k] >= '0' && l.src[k] <= '9' {
				isFloat = true
				j = k
				for j < len(l.src) && (l.src[j] >= '0' && l.src[j] <= '9') {
					j++
				}
			}
		}
		if isFloat {
			return emit(Float, j-l.pos)
		}
		return emit(Int, j-l.pos)

	case c == '\'':
		var sb strings.Builder
		j := l.pos + 1
		for {
			if j >= len(l.src) {
				return Token{}, l.errf("unterminated string literal")
			}
			if l.src[j] == '\'' {
				if j+1 < len(l.src) && l.src[j+1] == '\'' { // '' escape
					sb.WriteByte('\'')
					j += 2
					continue
				}
				j++
				break
			}
			sb.WriteByte(l.src[j])
			j++
		}
		t.Kind = String
		t.Text = sb.String()
		l.advance(j - l.pos)
		t.End = l.pos
		return t, nil

	case c == '%':
		// %name% parameter, else modulo operator.
		if isIdentStart(l.peekAt(1)) {
			j := l.pos + 1
			for j < len(l.src) && isIdentPart(l.src[j]) {
				j++
			}
			if j < len(l.src) && l.src[j] == '%' {
				t.Kind = Param
				t.Text = l.src[l.pos+1 : j]
				l.advance(j + 1 - l.pos)
				t.End = l.pos
				return t, nil
			}
		}
		return emit(Percent, 1)

	case c == '-':
		if l.peekAt(1) == '-' {
			if l.peekAt(2) == '>' {
				return emit(RArrow, 3)
			}
			return emit(Dash2, 2)
		}
		return emit(Minus, 1)

	case c == '<':
		if l.peekAt(1) == '-' && l.peekAt(2) == '-' {
			return emit(LArrow, 3)
		}
		if l.peekAt(1) == '=' {
			return emit(Le, 2)
		}
		if l.peekAt(1) == '>' {
			return emit(Ne, 2)
		}
		return emit(Lt, 1)

	case c == '>':
		if l.peekAt(1) == '=' {
			return emit(Ge, 2)
		}
		return emit(Gt, 1)

	case c == '!':
		if l.peekAt(1) == '=' {
			return emit(Ne, 2)
		}
		return Token{}, l.errf("unexpected character %q", c)

	case c == '=':
		return emit(Eq, 1)
	case c == '(':
		return emit(LParen, 1)
	case c == ')':
		return emit(RParen, 1)
	case c == '[':
		return emit(LBracket, 1)
	case c == ']':
		return emit(RBracket, 1)
	case c == '{':
		return emit(LBrace, 1)
	case c == '}':
		return emit(RBrace, 1)
	case c == ',':
		return emit(Comma, 1)
	case c == '.':
		return emit(Dot, 1)
	case c == ':':
		return emit(Colon, 1)
	case c == ';':
		return emit(Semicolon, 1)
	case c == '*':
		return emit(Star, 1)
	case c == '+':
		return emit(Plus, 1)
	case c == '/':
		return emit(Slash, 1)
	}
	return Token{}, l.errf("unexpected character %q", c)
}
