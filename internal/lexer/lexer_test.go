package lexer

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	out := make([]Kind, 0, len(toks))
	for _, tok := range toks {
		out = append(out, tok.Kind)
	}
	return out
}

func texts(t *testing.T, src string) []string {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	out := make([]string, 0, len(toks)-1)
	for _, tok := range toks[:len(toks)-1] {
		out = append(out, tok.Text)
	}
	return out
}

func eq[T comparable](t *testing.T, got, want []T) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v (%v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

func TestArrows(t *testing.T) {
	eq(t, kinds(t, "--feature-->"), []Kind{Dash2, Ident, RArrow, EOF})
	eq(t, kinds(t, "<--reviewer--"), []Kind{LArrow, Ident, Dash2, EOF})
	eq(t, kinds(t, "a - b"), []Kind{Ident, Minus, Ident, EOF})
	eq(t, kinds(t, "a --> b"), []Kind{Ident, RArrow, Ident, EOF})
	eq(t, kinds(t, "--[ ]-->"), []Kind{Dash2, LBracket, RBracket, RArrow, EOF})
}

func TestComparisons(t *testing.T) {
	eq(t, kinds(t, "= <> != < <= > >="), []Kind{Eq, Ne, Ne, Lt, Le, Gt, Ge, EOF})
}

func TestParams(t *testing.T) {
	toks, err := Lex("id = %Product1%")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != Param || toks[2].Text != "Product1" {
		t.Errorf("param token = %v %q", toks[2].Kind, toks[2].Text)
	}
	// Bare % is modulo.
	eq(t, kinds(t, "a % 3"), []Kind{Ident, Percent, Int, EOF})
	// %name without closing % is modulo + ident.
	eq(t, kinds(t, "a %b"), []Kind{Ident, Percent, Ident, EOF})
}

func TestNumbers(t *testing.T) {
	eq(t, kinds(t, "10 3.5 1e3 2.5e-2 {10}"), []Kind{Int, Float, Float, Float, LBrace, Int, RBrace, EOF})
	// Qualified name is not a float.
	eq(t, kinds(t, "a.b"), []Kind{Ident, Dot, Ident, EOF})
	// "top 10" keeps the integer intact.
	eq(t, texts(t, "top 10"), []string{"top", "10"})
}

func TestStrings(t *testing.T) {
	toks, err := Lex("'it''s' 'plain'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "it's" || toks[1].Text != "plain" {
		t.Errorf("strings = %q, %q", toks[0].Text, toks[1].Text)
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string must fail")
	}
}

func TestCommentsAndNewlines(t *testing.T) {
	src := "create // a comment\n/* block\ncomment */ table"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	eq(t, kinds(t, src), []Kind{Keyword, Keyword, EOF})
	if !toks[1].AfterNewline {
		t.Error("token after newline must be flagged")
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("unterminated block comment must fail")
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks, _ := Lex("SELECT Select select")
	for _, tok := range toks[:3] {
		if tok.Kind != Keyword || !tok.Is("select") {
			t.Errorf("token %q not recognised as select", tok.Text)
		}
	}
	if IsKeyword("ProductVtx") {
		t.Error("ProductVtx is not a keyword")
	}
}

func TestPositions(t *testing.T) {
	toks, err := Lex("ab\n  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("first token at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("second token at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestOffsetsSliceSource(t *testing.T) {
	src := "ingest table Products products.csv"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstructing "products.csv" from token offsets (what the parser
	// does for unquoted ingest paths).
	first, last := toks[3], toks[5]
	if got := src[first.Start:last.End]; got != "products.csv" {
		t.Errorf("offset slice = %q", got)
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Lex("abc\n  @")
	if err == nil {
		t.Fatal("@ must be a lexical error")
	}
	if !strings.Contains(err.Error(), "line 2:3") {
		t.Errorf("error lacks position: %v", err)
	}
}
