// Package expr implements the typed scalar expression trees used by GraQL
// where-clauses and query-step conditions.
//
// Expressions are built by the parser with unresolved identifier
// references; static analysis (internal/sema) resolves each reference to a
// (source, column) pair — a source being a table in scope or a step in a
// path query — and type-checks the tree. Evaluation then reads values
// through the Env interface, so the same expression machinery works for
// table scans, vertex-step filters, and cross-step label comparisons.
package expr

import (
	"fmt"
	"strings"

	"graql/internal/diag"
	"graql/internal/value"
)

// Op enumerates expression operators.
type Op uint8

// Operators.
const (
	OpInvalid Op = iota
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
)

// String returns the GraQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpNot:
		return "not"
	case OpAdd:
		return "+"
	case OpSub, OpNeg:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	}
	return "?"
}

// Comparison reports whether o is a comparison operator.
func (o Op) Comparison() bool { return o >= OpEq && o <= OpGe }

// Logical reports whether o is a boolean connective.
func (o Op) Logical() bool { return o == OpAnd || o == OpOr || o == OpNot }

// Arith reports whether o is an arithmetic operator.
func (o Op) Arith() bool { return o >= OpAdd && o <= OpMod }

// Env supplies column values during evaluation.
type Env interface {
	// Lookup returns the value of the resolved reference (source, col).
	Lookup(source, col int) value.Value
}

// TypeEnv supplies column types during static analysis.
type TypeEnv interface {
	TypeOf(source, col int) value.Type
}

// Expr is a node in an expression tree.
type Expr interface {
	// Eval computes the expression's value in env.
	Eval(env Env) (value.Value, error)
	// Check type-checks the expression and returns its static type.
	// Type errors are *diag.Diagnostic values carrying the node's span.
	Check(env TypeEnv) (value.Type, error)
	// String renders GraQL source for the expression.
	String() string
}

// StaticType returns the inferred type annotation recorded on e by the
// most recent successful Check call. Nodes that have never been checked
// (or whose type cannot be proven statically, e.g. unbound parameters)
// report value.Invalid. The annotation is what downstream consumers —
// EXPLAIN, the IR verifier, the cardinality estimator — read instead of
// re-running inference.
func StaticType(e Expr) value.Type {
	switch n := e.(type) {
	case *Const:
		return value.Type{Kind: n.V.Kind()}
	case *Param:
		return value.Invalid
	case *Ref:
		return n.Typ
	case *Unary:
		return n.Typ
	case *Binary:
		return n.Typ
	}
	return value.Invalid
}

// SpanOf returns the source span of a node. Nodes built without position
// information (IR decoding, hand-built tests) yield the zero span.
func SpanOf(e Expr) diag.Span {
	switch n := e.(type) {
	case *Const:
		return n.Loc
	case *Param:
		return n.Loc
	case *Ref:
		return n.Loc
	case *Unary:
		return n.Loc
	case *Binary:
		return n.Loc
	}
	return diag.Span{}
}

// typeDiag builds a positioned static type error for node e.
func typeDiag(e Expr, code diag.Code, format string, args ...any) error {
	return &diag.Diagnostic{
		Severity: diag.SevError,
		Code:     code,
		Span:     SpanOf(e),
		Msg:      fmt.Sprintf(format, args...),
	}
}

// Const is a literal value.
type Const struct {
	V   value.Value
	Loc diag.Span
}

// NewConst returns a literal expression.
func NewConst(v value.Value) *Const { return &Const{V: v} }

// Eval implements Expr.
func (c *Const) Eval(Env) (value.Value, error) { return c.V, nil }

// Check implements Expr.
func (c *Const) Check(TypeEnv) (value.Type, error) { return value.Type{Kind: c.V.Kind()}, nil }

func (c *Const) String() string {
	if c.V.IsNull() {
		return c.V.String()
	}
	switch c.V.Kind() {
	case value.KindString:
		return "'" + strings.ReplaceAll(c.V.Str(), "'", "''") + "'"
	case value.KindDate:
		// Render the explicit date-literal form so the output re-parses
		// as a date (a bare quoted string would round-trip as varchar).
		return "date '" + c.V.String() + "'"
	}
	return c.V.String()
}

// Param is a query parameter such as %Product1% in the paper's Berlin
// queries. Parameters must be substituted (see Bind) before evaluation.
type Param struct {
	Name string
	Loc  diag.Span
}

// Eval implements Expr; an unbound parameter is an execution error.
func (p *Param) Eval(Env) (value.Value, error) {
	return value.Value{}, fmt.Errorf("graql: unbound parameter %%%s%%", p.Name)
}

// Check implements Expr. A parameter's type is unknown statically; it
// checks as comparable-with-anything by reporting an invalid type that
// comparison checking treats as a wildcard.
func (p *Param) Check(TypeEnv) (value.Type, error) { return value.Invalid, nil }

func (p *Param) String() string { return "%" + p.Name + "%" }

// Ref is a column reference. Qualifier/Name hold the source text (e.g.
// ProductVtx.producer, or a bare column name); Source/Col are filled in by
// resolution. Source -1 means unresolved.
type Ref struct {
	Qualifier string
	Name      string
	Source    int
	Col       int
	Typ       value.Type // inferred type annotation, set by Check
	Loc       diag.Span
}

// NewRef returns an unresolved reference.
func NewRef(qualifier, name string) *Ref {
	return &Ref{Qualifier: qualifier, Name: name, Source: -1}
}

// Resolved reports whether the reference has been bound to a source.
func (r *Ref) Resolved() bool { return r.Source >= 0 }

// Eval implements Expr.
func (r *Ref) Eval(env Env) (value.Value, error) {
	if !r.Resolved() {
		return value.Value{}, fmt.Errorf("graql: unresolved reference %s", r.String())
	}
	return env.Lookup(r.Source, r.Col), nil
}

// Check implements Expr.
func (r *Ref) Check(env TypeEnv) (value.Type, error) {
	if !r.Resolved() {
		return value.Invalid, fmt.Errorf("graql: unresolved reference %s", r.String())
	}
	r.Typ = env.TypeOf(r.Source, r.Col)
	return r.Typ, nil
}

func (r *Ref) String() string {
	if r.Qualifier != "" {
		return r.Qualifier + "." + r.Name
	}
	return r.Name
}

// Unary applies OpNot or OpNeg to one operand.
type Unary struct {
	Op  Op
	X   Expr
	Typ value.Type // inferred type annotation, set by Check
	Loc diag.Span
}

// Eval implements Expr.
func (u *Unary) Eval(env Env) (value.Value, error) {
	x, err := u.X.Eval(env)
	if err != nil {
		return value.Value{}, err
	}
	switch u.Op {
	case OpNot:
		if x.Kind() != value.KindBool {
			return value.Value{}, &value.TypeError{Op: "not", A: x.Kind(), B: value.KindBool}
		}
		if x.IsNull() {
			return value.NewNull(value.KindBool), nil
		}
		return value.NewBool(!x.Bool()), nil
	case OpNeg:
		switch x.Kind() {
		case value.KindInt:
			if x.IsNull() {
				return value.NewNull(value.KindInt), nil
			}
			return value.NewInt(-x.Int()), nil
		case value.KindFloat:
			if x.IsNull() {
				return value.NewNull(value.KindFloat), nil
			}
			return value.NewFloat(-x.Float()), nil
		}
		return value.Value{}, &value.TypeError{Op: "negate", A: x.Kind(), B: value.KindFloat}
	}
	return value.Value{}, fmt.Errorf("graql: bad unary operator %v", u.Op)
}

// Check implements Expr.
func (u *Unary) Check(env TypeEnv) (value.Type, error) {
	xt, err := u.X.Check(env)
	if err != nil {
		return value.Invalid, err
	}
	switch u.Op {
	case OpNot:
		if xt.Kind != value.KindBool && xt.Kind != value.KindInvalid {
			return value.Invalid, typeDiag(u, diag.BoolRequired,
				"operand of not must be boolean, got %s", xt.Kind)
		}
		u.Typ = value.Bool
		return value.Bool, nil
	case OpNeg:
		if !xt.Kind.Numeric() && xt.Kind != value.KindInvalid {
			return value.Invalid, typeDiag(u, diag.NumberRequired,
				"cannot negate %s", xt.Kind)
		}
		u.Typ = xt
		return xt, nil
	}
	return value.Invalid, fmt.Errorf("graql: bad unary operator %v", u.Op)
}

func (u *Unary) String() string {
	if u.Op == OpNot {
		return "not " + u.X.String()
	}
	return "-" + u.X.String()
}

// Binary applies a binary operator.
type Binary struct {
	Op   Op
	L, R Expr
	Typ  value.Type // inferred type annotation, set by Check
	Loc  diag.Span
}

// NewBinary returns a binary expression node.
func NewBinary(op Op, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

// Eval implements Expr. Comparisons follow GraQL strong typing (an
// incomparable pair is a runtime type error). NULL follows SQL
// three-valued logic: a comparison with NULL is NULL, connectives use
// Kleene semantics (false and NULL = false; true or NULL = true;
// otherwise NULL propagates), and filters treat a NULL condition as not
// satisfied. Arithmetic between two integers yields an integer
// (truncating division), otherwise a float.
func (b *Binary) Eval(env Env) (value.Value, error) {
	// Short-circuit logical connectives (Kleene).
	if b.Op == OpAnd || b.Op == OpOr {
		l, err := b.L.Eval(env)
		if err != nil {
			return value.Value{}, err
		}
		if l.Kind() != value.KindBool {
			return value.Value{}, &value.TypeError{Op: b.Op.String(), A: l.Kind(), B: value.KindBool}
		}
		// The dominant value short-circuits regardless of the right side.
		if !l.IsNull() {
			if b.Op == OpAnd && !l.Bool() {
				return value.NewBool(false), nil
			}
			if b.Op == OpOr && l.Bool() {
				return value.NewBool(true), nil
			}
		}
		r, err := b.R.Eval(env)
		if err != nil {
			return value.Value{}, err
		}
		if r.Kind() != value.KindBool {
			return value.Value{}, &value.TypeError{Op: b.Op.String(), A: r.Kind(), B: value.KindBool}
		}
		if !r.IsNull() {
			if b.Op == OpAnd && !r.Bool() {
				return value.NewBool(false), nil
			}
			if b.Op == OpOr && r.Bool() {
				return value.NewBool(true), nil
			}
		}
		if l.IsNull() || r.IsNull() {
			return value.NewNull(value.KindBool), nil
		}
		// Neither dominant nor NULL: and → true, or → false.
		return value.NewBool(b.Op == OpAnd), nil
	}

	l, err := b.L.Eval(env)
	if err != nil {
		return value.Value{}, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return value.Value{}, err
	}
	switch {
	case b.Op.Comparison():
		if l.IsNull() || r.IsNull() {
			return value.NewNull(value.KindBool), nil
		}
		c, err := value.Compare(l, r)
		if err != nil {
			return value.Value{}, err
		}
		switch b.Op {
		case OpEq:
			return value.NewBool(c == 0), nil
		case OpNe:
			return value.NewBool(c != 0), nil
		case OpLt:
			return value.NewBool(c < 0), nil
		case OpLe:
			return value.NewBool(c <= 0), nil
		case OpGt:
			return value.NewBool(c > 0), nil
		case OpGe:
			return value.NewBool(c >= 0), nil
		}
	case b.Op.Arith():
		return evalArith(b.Op, l, r)
	}
	return value.Value{}, fmt.Errorf("graql: bad binary operator %v", b.Op)
}

func evalArith(op Op, l, r value.Value) (value.Value, error) {
	if !l.Kind().Numeric() || !r.Kind().Numeric() {
		return value.Value{}, &value.TypeError{Op: op.String(), A: l.Kind(), B: r.Kind()}
	}
	if l.IsNull() || r.IsNull() {
		return value.NewNull(value.KindFloat), nil
	}
	if l.Kind() == value.KindInt && r.Kind() == value.KindInt {
		a, b := l.Int(), r.Int()
		switch op {
		case OpAdd:
			return value.NewInt(a + b), nil
		case OpSub:
			return value.NewInt(a - b), nil
		case OpMul:
			return value.NewInt(a * b), nil
		case OpDiv:
			if b == 0 {
				return value.Value{}, fmt.Errorf("graql: integer division by zero")
			}
			return value.NewInt(a / b), nil
		case OpMod:
			if b == 0 {
				return value.Value{}, fmt.Errorf("graql: modulo by zero")
			}
			return value.NewInt(a % b), nil
		}
	}
	a, b := l.Float(), r.Float()
	switch op {
	case OpAdd:
		return value.NewFloat(a + b), nil
	case OpSub:
		return value.NewFloat(a - b), nil
	case OpMul:
		return value.NewFloat(a * b), nil
	case OpDiv:
		return value.NewFloat(a / b), nil
	case OpMod:
		return value.Value{}, &value.TypeError{Op: "%", A: l.Kind(), B: r.Kind()}
	}
	return value.Value{}, fmt.Errorf("graql: bad arithmetic operator %v", op)
}

// Check implements Expr, enforcing the static rules of paper §III-A:
// comparisons require comparable kinds, connectives require booleans,
// arithmetic requires numerics. Invalid (wildcard, from unbound parameters)
// operands check against anything.
func (b *Binary) Check(env TypeEnv) (value.Type, error) {
	lt, err := b.L.Check(env)
	if err != nil {
		return value.Invalid, err
	}
	rt, err := b.R.Check(env)
	if err != nil {
		return value.Invalid, err
	}
	wild := lt.Kind == value.KindInvalid || rt.Kind == value.KindInvalid
	switch {
	case b.Op.Comparison():
		if !wild && !lt.Comparable(rt) {
			return value.Invalid, typeDiag(b, diag.TypeMismatch,
				"cannot compare %s with %s", lt.Kind, rt.Kind)
		}
		b.Typ = value.Bool
		return value.Bool, nil
	case b.Op.Logical():
		if (lt.Kind != value.KindBool && lt.Kind != value.KindInvalid) ||
			(rt.Kind != value.KindBool && rt.Kind != value.KindInvalid) {
			bad := lt.Kind
			if bad == value.KindBool {
				bad = rt.Kind
			}
			return value.Invalid, typeDiag(b, diag.BoolRequired,
				"operand of %s must be boolean, got %s", b.Op, bad)
		}
		b.Typ = value.Bool
		return value.Bool, nil
	case b.Op.Arith():
		if !wild && (!lt.Kind.Numeric() || !rt.Kind.Numeric()) {
			return value.Invalid, typeDiag(b, diag.NumberRequired,
				"operator %s requires numeric operands, got %s and %s", b.Op, lt.Kind, rt.Kind)
		}
		float := lt.Kind == value.KindFloat || rt.Kind == value.KindFloat
		if b.Op == OpMod && float {
			// Modulo is integer-only at runtime; a float operand is a
			// guaranteed eval error regardless of what a wildcard binds.
			return value.Invalid, typeDiag(b, diag.FloatModulo,
				"operator %% requires integer operands, got %s and %s", lt.Kind, rt.Kind)
		}
		switch {
		case float:
			b.Typ = value.Float
		case wild:
			// int OP wildcard yields int or float depending on what the
			// parameter binds — unknown statically, so stay wildcard
			// rather than guess (inference must never be wrong).
			b.Typ = value.Invalid
		default:
			b.Typ = value.Int
		}
		return b.Typ, nil
	}
	return value.Invalid, fmt.Errorf("graql: bad binary operator %v", b.Op)
}

func (b *Binary) String() string {
	switch {
	case b.Op == OpAnd || b.Op == OpOr:
		return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
	default:
		return fmt.Sprintf("%s %s %s", b.L, b.Op, b.R)
	}
}
