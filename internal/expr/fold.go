package expr

import "graql/internal/value"

// Fold returns e with constant subtrees evaluated away. Folding is
// semantics-preserving:
//
//   - a Unary/Binary node whose operands are all constants is replaced by
//     its value only when evaluation succeeds — a constant `1/0` is left
//     alone so it still raises its runtime error;
//   - `false and X` / `true or X` collapse to their dominant constant even
//     when X is non-constant (short-circuit evaluation would never look at
//     X), and `true and X` / `false or X` collapse to X;
//   - everything else (refs, params, non-constant operands) is preserved.
//
// Spans are preserved so diagnostics about folded predicates still point
// at the original source. The planner runs Fold on resolved conditions so
// that e.g. `price > 10*100` costs one comparison per row, and the lint
// tier inspects the folded form to flag always-true/false predicates.
func Fold(e Expr) Expr {
	if e == nil {
		return nil
	}
	return Rewrite(e, foldNode)
}

// foldNode folds a single node whose children are already folded.
func foldNode(e Expr) Expr {
	switch n := e.(type) {
	case *Unary:
		if _, ok := constVal(n.X); !ok {
			return nil
		}
		v, err := n.Eval(nil)
		if err != nil {
			return nil
		}
		return &Const{V: v, Loc: n.Loc}
	case *Binary:
		lc, lok := constVal(n.L)
		rc, rok := constVal(n.R)
		if lok && rok {
			v, err := n.Eval(nil)
			if err != nil {
				// e.g. division by zero: keep the node so the error
				// surfaces at execution time, as without folding.
				return nil
			}
			return &Const{V: v, Loc: n.Loc}
		}
		// Short-circuit identities for connectives with one constant side.
		// Only exact rewrites are applied: a dominant RIGHT constant
		// (`x or true`) is left alone, because evaluation visits x first
		// and folding would hide x's runtime errors.
		if n.Op != OpAnd && n.Op != OpOr {
			return nil
		}
		if lok {
			return foldConnective(n, lc, n.R, true)
		}
		if rok {
			return foldConnective(n, rc, n.L, false)
		}
	}
	return nil
}

// foldConnective simplifies `c and x` / `c or x` given constant boolean
// c; left reports whether c is the left operand.
func foldConnective(b *Binary, c value.Value, x Expr, left bool) Expr {
	if c.Kind() != value.KindBool || c.IsNull() {
		// NULL is not dominant for either connective; `null and x` still
		// depends on x, so leave the node alone.
		return nil
	}
	dominant := c.Bool() == (b.Op == OpOr) // true or _, false and _
	if dominant {
		if !left {
			return nil // would skip x's evaluation; not exact
		}
		return &Const{V: value.NewBool(b.Op == OpOr), Loc: b.Loc}
	}
	// true and x → x; false or x → x (and their mirrored forms): exact,
	// since the connective's result always equals x's value here and x is
	// still evaluated.
	return x
}

// constVal returns the value of a constant node.
func constVal(e Expr) (value.Value, bool) {
	c, ok := e.(*Const)
	if !ok {
		return value.Value{}, false
	}
	return c.V, true
}
