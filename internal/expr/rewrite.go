package expr

import (
	"fmt"

	"graql/internal/value"
)

// Rewrite returns a copy of e with f applied bottom-up to every node. If f
// returns nil for a node, the (possibly child-rewritten) node is kept.
func Rewrite(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *Unary:
		e = &Unary{Op: n.Op, X: Rewrite(n.X, f), Loc: n.Loc}
	case *Binary:
		e = &Binary{Op: n.Op, L: Rewrite(n.L, f), R: Rewrite(n.R, f), Loc: n.Loc}
	case *Ref:
		cp := *n
		e = &cp
	}
	if r := f(e); r != nil {
		return r
	}
	return e
}

// Walk invokes f on every node of e, top-down.
func Walk(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch n := e.(type) {
	case *Unary:
		Walk(n.X, f)
	case *Binary:
		Walk(n.L, f)
		Walk(n.R, f)
	}
}

// BindParams substitutes %name% parameters with the given values. A
// parameter with no binding is an error (the paper's queries are templates;
// execution needs concrete values).
func BindParams(e Expr, params map[string]value.Value) (Expr, error) {
	if e == nil {
		return nil, nil
	}
	var missing string
	out := Rewrite(e, func(n Expr) Expr {
		p, ok := n.(*Param)
		if !ok {
			return nil
		}
		v, ok := params[p.Name]
		if !ok {
			if missing == "" {
				missing = p.Name
			}
			return nil
		}
		return &Const{V: v, Loc: p.Loc}
	})
	if missing != "" {
		return nil, fmt.Errorf("graql: no binding for parameter %%%s%%", missing)
	}
	return out, nil
}

// Params returns the distinct parameter names appearing in e, in first-use
// order.
func Params(e Expr) []string {
	var names []string
	seen := map[string]bool{}
	Walk(e, func(n Expr) {
		if p, ok := n.(*Param); ok && !seen[p.Name] {
			seen[p.Name] = true
			names = append(names, p.Name)
		}
	})
	return names
}

// Refs returns every Ref node in e, in source order.
func Refs(e Expr) []*Ref {
	var out []*Ref
	Walk(e, func(n Expr) {
		if r, ok := n.(*Ref); ok {
			out = append(out, r)
		}
	})
	return out
}

// Conjuncts splits e on top-level AND into its conjuncts. A nil expression
// yields no conjuncts.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll combines the given expressions with AND; nil for an empty slice.
func AndAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = NewBinary(OpAnd, out, e)
		}
	}
	return out
}

// EqualityPair reports whether e is an equality comparison between two
// column references and returns them.
func EqualityPair(e Expr) (l, r *Ref, ok bool) {
	b, isBin := e.(*Binary)
	if !isBin || b.Op != OpEq {
		return nil, nil, false
	}
	lr, lok := b.L.(*Ref)
	rr, rok := b.R.(*Ref)
	if !lok || !rok {
		return nil, nil, false
	}
	return lr, rr, true
}
