package expr

import (
	"strings"
	"testing"

	"graql/internal/value"
)

// mapEnv implements Env/TypeEnv over a flat (source, col) → value map.
type mapEnv struct {
	vals  map[[2]int]value.Value
	types map[[2]int]value.Type
}

func (m mapEnv) Lookup(s, c int) value.Value { return m.vals[[2]int{s, c}] }
func (m mapEnv) TypeOf(s, c int) value.Type  { return m.types[[2]int{s, c}] }

func ref(s, c int, name string) *Ref {
	r := NewRef("", name)
	r.Source, r.Col = s, c
	return r
}

func i(n int64) Expr   { return NewConst(value.NewInt(n)) }
func f(x float64) Expr { return NewConst(value.NewFloat(x)) }
func s(x string) Expr  { return NewConst(value.NewString(x)) }
func b(x bool) Expr    { return NewConst(value.NewBool(x)) }

func evalOK(t *testing.T, e Expr, env Env) value.Value {
	t.Helper()
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestComparisonOps(t *testing.T) {
	cases := []struct {
		op   Op
		l, r Expr
		want bool
	}{
		{OpEq, i(2), i(2), true},
		{OpEq, i(2), f(2.0), true},
		{OpNe, s("a"), s("b"), true},
		{OpLt, i(1), i(2), true},
		{OpLe, i(2), i(2), true},
		{OpGt, f(2.5), i(2), true},
		{OpGe, i(1), i(2), false},
	}
	for _, c := range cases {
		got := evalOK(t, NewBinary(c.op, c.l, c.r), nil)
		if got.Bool() != c.want {
			t.Errorf("%s %s %s = %v, want %v", c.l, c.op, c.r, got.Bool(), c.want)
		}
	}
}

func TestComparisonNullIsNull(t *testing.T) {
	null := NewConst(value.NewNull(value.KindInt))
	for _, op := range []Op{OpEq, OpNe, OpLt, OpGe} {
		got := evalOK(t, NewBinary(op, null, i(1)), nil)
		if !got.IsNull() {
			t.Errorf("NULL %s 1 must be NULL (three-valued logic)", op)
		}
	}
}

// TestKleeneConnectives: SQL three-valued logic for and/or/not.
func TestKleeneConnectives(t *testing.T) {
	null := NewConst(value.NewNull(value.KindBool))
	cases := []struct {
		e      Expr
		isNull bool
		val    bool
	}{
		{NewBinary(OpAnd, b(false), null), false, false}, // false and NULL = false
		{NewBinary(OpAnd, null, b(false)), false, false},
		{NewBinary(OpAnd, b(true), null), true, false}, // true and NULL = NULL
		{NewBinary(OpOr, b(true), null), false, true},  // true or NULL = true
		{NewBinary(OpOr, null, b(true)), false, true},
		{NewBinary(OpOr, b(false), null), true, false}, // false or NULL = NULL
		{&Unary{Op: OpNot, X: null}, true, false},      // not NULL = NULL
	}
	for _, c := range cases {
		got := evalOK(t, c.e, nil)
		if got.IsNull() != c.isNull {
			t.Errorf("%s: IsNull = %v, want %v", c.e, got.IsNull(), c.isNull)
			continue
		}
		if !c.isNull && got.Bool() != c.val {
			t.Errorf("%s = %v, want %v", c.e, got.Bool(), c.val)
		}
	}
}

func TestComparisonTypeError(t *testing.T) {
	e := NewBinary(OpLt, NewConst(value.DateFromYMD(2008, 1, 1)), f(1.5))
	if _, err := e.Eval(nil); err == nil {
		t.Error("date < float must error at runtime")
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	// The right side would error (unresolved ref) if evaluated.
	boom := NewRef("", "boom")
	if got := evalOK(t, NewBinary(OpAnd, b(false), boom), nil); got.Bool() {
		t.Error("false and X must short-circuit to false")
	}
	if got := evalOK(t, NewBinary(OpOr, b(true), boom), nil); !got.Bool() {
		t.Error("true or X must short-circuit to true")
	}
	if _, err := NewBinary(OpAnd, b(true), boom).Eval(nil); err == nil {
		t.Error("true and <unresolved> must surface the error")
	}
}

func TestNotAndNeg(t *testing.T) {
	if got := evalOK(t, &Unary{Op: OpNot, X: b(false)}, nil); !got.Bool() {
		t.Error("not false = true")
	}
	if got := evalOK(t, &Unary{Op: OpNeg, X: i(5)}, nil); got.Int() != -5 {
		t.Error("-5 wrong")
	}
	if _, err := (&Unary{Op: OpNot, X: i(1)}).Eval(nil); err == nil {
		t.Error("not integer must error")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{NewBinary(OpAdd, i(2), i(3)), value.NewInt(5)},
		{NewBinary(OpSub, i(2), i(3)), value.NewInt(-1)},
		{NewBinary(OpMul, i(4), i(3)), value.NewInt(12)},
		{NewBinary(OpDiv, i(7), i(2)), value.NewInt(3)},
		{NewBinary(OpMod, i(7), i(2)), value.NewInt(1)},
		{NewBinary(OpAdd, i(2), f(0.5)), value.NewFloat(2.5)},
		{NewBinary(OpDiv, f(7), i(2)), value.NewFloat(3.5)},
	}
	for _, c := range cases {
		got := evalOK(t, c.e, nil)
		if !value.Equal(got, c.want) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	if _, err := NewBinary(OpDiv, i(1), i(0)).Eval(nil); err == nil {
		t.Error("integer division by zero must error")
	}
	if _, err := NewBinary(OpAdd, s("a"), i(1)).Eval(nil); err == nil {
		t.Error("varchar + integer must error")
	}
}

func TestRefEval(t *testing.T) {
	env := mapEnv{vals: map[[2]int]value.Value{{0, 1}: value.NewInt(7)}}
	got := evalOK(t, ref(0, 1, "x"), env)
	if got.Int() != 7 {
		t.Errorf("ref = %v", got)
	}
	if _, err := NewRef("q", "y").Eval(env); err == nil {
		t.Error("unresolved ref must error")
	}
}

func TestCheckRules(t *testing.T) {
	env := mapEnv{types: map[[2]int]value.Type{
		{0, 0}: value.Date,
		{0, 1}: value.Float,
		{0, 2}: value.Bool,
	}}
	// date vs float comparison: the paper's own static error example.
	bad := NewBinary(OpLt, ref(0, 0, "d"), ref(0, 1, "f"))
	if _, err := bad.Check(env); err == nil {
		t.Error("date < float must fail static checking")
	}
	// boolean connective over non-boolean.
	bad2 := NewBinary(OpAnd, ref(0, 1, "f"), ref(0, 2, "b"))
	if _, err := bad2.Check(env); err == nil {
		t.Error("float and bool must fail static checking")
	}
	// Params are wildcards.
	wild := NewBinary(OpEq, ref(0, 0, "d"), &Param{Name: "P"})
	if typ, err := wild.Check(env); err != nil || typ.Kind != value.KindBool {
		t.Errorf("param comparison should check as boolean, got %v, %v", typ, err)
	}
	ok := NewBinary(OpGe, ref(0, 1, "f"), NewConst(value.NewInt(3)))
	if typ, err := ok.Check(env); err != nil || typ.Kind != value.KindBool {
		t.Errorf("float >= int should be boolean, got %v, %v", typ, err)
	}
}

func TestBindParams(t *testing.T) {
	e := NewBinary(OpEq, ref(0, 0, "id"), &Param{Name: "P"})
	bound, err := BindParams(e, map[string]value.Value{"P": value.NewString("x")})
	if err != nil {
		t.Fatal(err)
	}
	env := mapEnv{vals: map[[2]int]value.Value{{0, 0}: value.NewString("x")}}
	if got := evalOK(t, bound, env); !got.Bool() {
		t.Error("bound comparison should hold")
	}
	// Original is untouched (params still unbound).
	if _, err := e.Eval(env); err == nil {
		t.Error("original expression must keep its parameter")
	}
	if _, err := BindParams(e, nil); err == nil || !strings.Contains(err.Error(), "%P%") {
		t.Errorf("missing binding error = %v", err)
	}
}

func TestConjunctsAndAll(t *testing.T) {
	e := NewBinary(OpAnd, NewBinary(OpAnd, b(true), b(false)), b(true))
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d, want 3", len(cs))
	}
	round := AndAll(cs)
	if round.String() != e.String() {
		t.Errorf("AndAll(Conjuncts) = %s, want %s", round, e)
	}
	if Conjuncts(nil) != nil {
		t.Error("nil has no conjuncts")
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) must be nil")
	}
}

func TestParamsAndRefsWalk(t *testing.T) {
	e := NewBinary(OpAnd,
		NewBinary(OpEq, NewRef("a", "x"), &Param{Name: "P1"}),
		NewBinary(OpGt, NewRef("b", "y"), &Param{Name: "P2"}))
	if got := Params(e); len(got) != 2 || got[0] != "P1" || got[1] != "P2" {
		t.Errorf("Params = %v", got)
	}
	if got := Refs(e); len(got) != 2 || got[0].Qualifier != "a" {
		t.Errorf("Refs = %v", got)
	}
}

func TestEqualityPair(t *testing.T) {
	e := NewBinary(OpEq, NewRef("a", "x"), NewRef("b", "y"))
	l, r, ok := EqualityPair(e)
	if !ok || l.Qualifier != "a" || r.Qualifier != "b" {
		t.Error("EqualityPair failed on ref=ref")
	}
	if _, _, ok := EqualityPair(NewBinary(OpEq, NewRef("a", "x"), i(1))); ok {
		t.Error("ref=const is not an equality pair")
	}
	if _, _, ok := EqualityPair(NewBinary(OpLt, NewRef("a", "x"), NewRef("b", "y"))); ok {
		t.Error("< is not an equality pair")
	}
}

func TestRewriteIsDeep(t *testing.T) {
	orig := NewBinary(OpEq, NewRef("a", "x"), i(1))
	copied := Rewrite(orig, func(Expr) Expr { return nil })
	copied.(*Binary).L.(*Ref).Source = 5
	if orig.L.(*Ref).Source == 5 {
		t.Error("Rewrite must copy Ref nodes, not alias them")
	}
}

func TestStringRendering(t *testing.T) {
	e := NewBinary(OpAnd,
		NewBinary(OpEq, NewRef("", "country"), s("US")),
		NewBinary(OpGt, NewRef("y", "price"), &Param{Name: "Max"}))
	want := "(country = 'US' and y.price > %Max%)"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := s("o'brien").String(); got != "'o''brien'" {
		t.Errorf("quote escaping: %q", got)
	}
}
