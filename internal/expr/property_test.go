package expr

import (
	"errors"
	"math/rand"
	"testing"

	"graql/internal/value"
)

// The soundness contract of static typing (DESIGN.md §14): inference is
// never wrong, only possibly incomplete. Concretely, over a randomized
// corpus of expression trees against a typed row:
//
//  1. an expression that passes Check never fails Eval with a
//     *value.TypeError (runtime type errors are exactly the class the
//     GQL04xx static pass promises to catch ahead of time), and
//  2. when Check infers a concrete kind and Eval produces a non-null
//     value, the kinds agree. Null results are exempt: SQL three-valued
//     arithmetic collapses typed nulls to a float-kinded null.

// propEnv is a one-row environment: column i of source 0 has propTypes[i]
// and the value propRow[i].
type propEnv struct{}

var propTypes = []value.Type{
	value.Int, value.Float, value.Bool, value.Varchar(16), value.Date,
	value.Int, value.Float, value.Bool, value.Varchar(16), value.Date, // null columns
}

var propRow = []value.Value{
	value.NewInt(42), value.NewFloat(2.5), value.NewBool(true),
	value.NewString("graql"), value.NewDate(19700),
	value.NewNull(value.KindInt), value.NewNull(value.KindFloat),
	value.NewNull(value.KindBool), value.NewNull(value.KindString),
	value.NewNull(value.KindDate),
}

func (propEnv) Lookup(source, col int) value.Value { return propRow[col] }
func (propEnv) TypeOf(source, col int) value.Type  { return propTypes[col] }

// genExpr builds a random expression tree of the given depth. Leaves are
// constants (any kind, sometimes null) and column references; inner nodes
// draw uniformly from every operator, so ill-typed trees are common —
// those must be rejected by Check, not survive to a runtime type error.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			col := r.Intn(len(propTypes))
			ref := NewRef("t", "c")
			ref.Source, ref.Col = 0, col
			return ref
		}
		return NewConst(genConst(r))
	}
	switch r.Intn(8) {
	case 0:
		return &Unary{Op: OpNot, X: genExpr(r, depth-1)}
	case 1:
		return &Unary{Op: OpNeg, X: genExpr(r, depth-1)}
	default:
		ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr, OpAdd, OpSub, OpMul, OpDiv, OpMod}
		return NewBinary(ops[r.Intn(len(ops))], genExpr(r, depth-1), genExpr(r, depth-1))
	}
}

func genConst(r *rand.Rand) value.Value {
	kinds := []value.Kind{value.KindInt, value.KindFloat, value.KindBool, value.KindString, value.KindDate}
	k := kinds[r.Intn(len(kinds))]
	if r.Intn(5) == 0 {
		return value.NewNull(k)
	}
	switch k {
	case value.KindInt:
		return value.NewInt(int64(r.Intn(7)) - 3) // small ints: zero divisors happen
	case value.KindFloat:
		return value.NewFloat(float64(r.Intn(7))/2 - 1)
	case value.KindBool:
		return value.NewBool(r.Intn(2) == 0)
	case value.KindString:
		return value.NewString([]string{"", "a", "graql"}[r.Intn(3)])
	default:
		return value.NewDate(int64(r.Intn(1000)))
	}
}

func TestCheckedExprNeverTypeErrors(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	env := propEnv{}
	checked, evaled := 0, 0
	for i := 0; i < 20000; i++ {
		e := genExpr(r, 4)
		typ, err := e.Check(env)
		if err != nil {
			continue // statically rejected: out of scope for the property
		}
		checked++
		v, err := e.Eval(env)
		if err != nil {
			var te *value.TypeError
			if errors.As(err, &te) {
				t.Fatalf("tree #%d %s: passed Check (%s) but Eval type-errored: %v", i, e, typ, err)
			}
			continue // division by zero etc.: legal runtime errors
		}
		evaled++
		if v.IsNull() || typ.Kind == value.KindInvalid {
			continue
		}
		if v.Kind() != typ.Kind {
			t.Fatalf("tree #%d %s: Check inferred %s but Eval returned kind %s", i, e, typ.Kind, v.Kind())
		}
		if got := StaticType(e); got.Kind != value.KindInvalid && got.Kind != typ.Kind {
			t.Fatalf("tree #%d %s: StaticType annotation %s disagrees with Check result %s", i, e, got.Kind, typ.Kind)
		}
	}
	// The corpus must actually exercise the property: a generator drifting
	// towards all-ill-typed trees would pass vacuously.
	if checked < 1000 || evaled < 500 {
		t.Fatalf("corpus too thin: %d trees checked, %d evaluated", checked, evaled)
	}
}
